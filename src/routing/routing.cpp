#include "routing/routing.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/sweep.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace genoc {

namespace {

inline bool row_bit(const std::uint64_t* row, PortId pid) {
  return ((row[pid >> 6] >> (pid & 63)) & 1u) != 0;
}

}  // namespace

ClosureRowScratch::ClosureRowScratch() = default;
ClosureRowScratch::~ClosureRowScratch() = default;
ClosureRowScratch::ClosureRowScratch(ClosureRowScratch&&) noexcept = default;
ClosureRowScratch& ClosureRowScratch::operator=(ClosureRowScratch&&) noexcept =
    default;

RoutingFunction::~RoutingFunction() {
  if (rows_ != nullptr) {
    for (std::size_t i = 0; i < topo_->destination_count(); ++i) {
      delete rows_[i].load(std::memory_order_relaxed);
    }
  }
}

bool RoutingFunction::valid_endpoints(const Port& s, const Port& d) const {
  const Mesh2D& m = mesh();
  return m.exists(s) && d.name == PortName::kLocal &&
         d.dir == Direction::kOut && m.exists(d);
}

void RoutingFunction::append_next_hops(const Port& /*current*/,
                                       const Port& /*dest*/,
                                       std::vector<Port>& /*out*/) const {
  GENOC_REQUIRE(false, "append_next_hops is the grid Port-tuple API; " +
                           name() + " is id-native — use append_next_hop_ids");
}

void RoutingFunction::append_next_hop_ids(PortId /*current*/,
                                          std::size_t /*dest_index*/,
                                          std::vector<PortId>& /*out*/) const {
  GENOC_REQUIRE(false, "append_next_hop_ids must be implemented by id-native "
                       "routing functions (" + name() + ")");
}

void RoutingFunction::next_hop_ids_into(PortId current, std::size_t dest_index,
                                        std::vector<PortId>& out,
                                        std::vector<Port>& scratch) const {
  if (id_native()) {
    append_next_hop_ids(current, dest_index, out);
    return;
  }
  const Mesh2D& m = mesh();
  scratch.clear();
  append_next_hops(m.port(current), m.port(topo_->destination_id(dest_index)),
                   scratch);
  for (const Port& hop : scratch) {
    // A routing function may only produce existing ports for reachable
    // inputs; a violation is a (C-1)-detectable bug the id layer neither
    // records nor propagates through.
    const std::int32_t qid = m.try_id(hop);
    if (qid >= 0) {
      out.push_back(static_cast<PortId>(qid));
    }
  }
}

std::uint8_t RoutingFunction::node_out_mask(std::int32_t /*x*/,
                                            std::int32_t /*y*/,
                                            const Port& /*dest*/) const {
  GENOC_REQUIRE(false, "node_out_mask requires a node_uniform() routing "
                       "function (" + name() + " is not)");
  return 0;
}

std::uint64_t RoutingFunction::out_mask_id(std::size_t node,
                                           std::size_t dest_index) const {
  const Mesh2D& m = mesh();  // id-native functions must override
  const auto width = static_cast<std::size_t>(m.width());
  return node_out_mask(static_cast<std::int32_t>(node % width),
                       static_cast<std::int32_t>(node / width),
                       m.port(topo_->destination_id(dest_index)));
}

void RoutingFunction::fill_node_masks(std::size_t dest_index,
                                      std::uint64_t* masks) const {
  if (!id_native() && grid_ != nullptr) {
    // Hoist the destination Port and the node -> (x, y) arithmetic out of
    // the per-node loop; the remaining cost is one virtual call per node.
    const Port dest = grid_->port(topo_->destination_id(dest_index));
    const std::int32_t width = grid_->width();
    const std::int32_t height = grid_->height();
    std::size_t node = 0;
    for (std::int32_t y = 0; y < height; ++y) {
      for (std::int32_t x = 0; x < width; ++x, ++node) {
        masks[node] = node_out_mask(x, y, dest);
      }
    }
    return;
  }
  for (std::size_t node = 0; node < topo_->node_count(); ++node) {
    masks[node] = out_mask_id(node, dest_index);
  }
}

std::uint64_t RoutingFunction::in_port_union(std::size_t /*node*/,
                                             std::size_t /*in_name*/) const {
  GENOC_REQUIRE(false, "in_port_union requires has_in_port_unions() (" +
                           name() + " does not implement it)");
  return 0;
}

bool RoutingFunction::reachable_id(PortId s, std::size_t dest_index) const {
  if (!id_native() && grid_ != nullptr) {
    return reachable(grid_->port(s),
                     grid_->port(topo_->destination_id(dest_index)));
  }
  return closure_reachable_id(s, dest_index);
}

bool RoutingFunction::closure_reachable(const Port& s, const Port& d) const {
  if (!valid_endpoints(s, d)) {
    return false;
  }
  // One terminal per node, enumerated node-major: the dest index of a grid
  // Local OUT port is its row-major node index.
  const auto dest_index = static_cast<std::size_t>(d.y) *
                              static_cast<std::size_t>(grid_->width()) +
                          static_cast<std::size_t>(d.x);
  return closure_reachable_id(grid_->id(s), dest_index);
}

ClosureMode RoutingFunction::resolved_mode() const {
  if (forced_mode_ != ClosureMode::kAuto) {
    return forced_mode_;
  }
  return (node_uniform() && topo_->name_count() <= 64)
             ? ClosureMode::kNodeMask
             : ClosureMode::kCompressed;
}

ClosureMode RoutingFunction::closure_mode() const { return resolved_mode(); }

void RoutingFunction::force_closure_mode(ClosureMode mode) {
  GENOC_REQUIRE(mode != ClosureMode::kNodeMask ||
                    (node_uniform() && topo_->name_count() <= 64),
                "kNodeMask requires a node-uniform routing function");
  GENOC_REQUIRE(rows_built_.load(std::memory_order_relaxed) == 0 &&
                    closure_.empty(),
                "force_closure_mode must run before any closure query");
  forced_mode_ = mode;
}

std::uint64_t RoutingFunction::closure_bytes() const {
  return bytes_.load(std::memory_order_relaxed);
}

std::uint64_t RoutingFunction::closure_dense_bytes() const {
  return static_cast<std::uint64_t>(topo_->destination_count()) *
         closure_row_words() * sizeof(std::uint64_t);
}

void RoutingFunction::note_row_built(std::uint64_t bytes_delta) const {
  rows_built_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t total =
      bytes_.fetch_add(bytes_delta, std::memory_order_relaxed) + bytes_delta;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  static obs::Counter& rows = metrics.counter("closure.rows_built");
  rows.increment();
  metrics.gauge("closure.bytes").record_max(static_cast<std::int64_t>(total));
}

bool RoutingFunction::node_mask_reachable(PortId s,
                                          std::size_t dest_index) const {
  // Mirrors RouteSweeper::sweep_nodes row semantics without any storage:
  // terminal IN ports are always visited (messages inject everywhere); an
  // OUT port is visited iff its node's mask selects it; a cardinal IN port
  // is visited iff the out-port whose link drives it is selected at ITS
  // node. The queried port exists, so the existence filter is implied.
  const std::size_t name = topo_->name_of(s);
  if (topo_->dir_of(s) == Direction::kIn) {
    if (((topo_->terminal_name_mask() >> name) & 1u) != 0) {
      return true;
    }
    const PortId driver = topo_->link_source(s);
    if (driver == kInvalidPort) {
      return false;
    }
    const std::uint64_t mask = out_mask_id(topo_->node_of(driver), dest_index);
    return ((mask >> topo_->name_of(driver)) & 1u) != 0;
  }
  const std::uint64_t mask = out_mask_id(topo_->node_of(s), dest_index);
  return ((mask >> name) & 1u) != 0;
}

void RoutingFunction::ensure_rows_allocated() const {
  std::call_once(rows_once_, [this] {
    rows_ = std::make_unique<std::atomic<CompressedRow*>[]>(
        topo_->destination_count());
    for (std::size_t i = 0; i < topo_->destination_count(); ++i) {
      rows_[i].store(nullptr, std::memory_order_relaxed);
    }
  });
}

const RoutingFunction::CompressedRow* RoutingFunction::compressed_row(
    std::size_t dest_index, RouteSweeper* sweeper) const {
  ensure_rows_allocated();
  std::atomic<CompressedRow*>& slot = rows_[dest_index];
  CompressedRow* row = slot.load(std::memory_order_acquire);
  if (row != nullptr) {
    return row;
  }
  const std::size_t words = closure_row_words();
  std::vector<std::uint64_t> dense(words, 0);
  std::unique_ptr<RouteSweeper> local;
  if (sweeper == nullptr) {
    local = std::make_unique<RouteSweeper>(*this);
    sweeper = local.get();
  }
  sweeper->sweep(dest_index, nullptr, dense.data());
  auto fresh = std::make_unique<CompressedRow>();
  // Hybrid form: the sorted id list wins when the row is sparse enough
  // that 4 bytes per visited port beats 8 bytes per 64-port word.
  std::size_t visited = 0;
  for (const std::uint64_t word : dense) {
    visited += static_cast<std::size_t>(std::popcount(word));
  }
  if (visited * sizeof(std::uint32_t) < words * sizeof(std::uint64_t)) {
    fresh->ids.reserve(visited);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t word = dense[w];
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
        fresh->ids.push_back(static_cast<std::uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
  } else {
    fresh->words = std::move(dense);
  }
  const std::uint64_t bytes = fresh->bytes();
  CompressedRow* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_release,
                                   std::memory_order_acquire)) {
    note_row_built(bytes);
    return fresh.release();
  }
  return expected;  // another thread won the race; ours is freed here
}

bool RoutingFunction::closure_reachable_id(PortId s,
                                           std::size_t dest_index) const {
  switch (resolved_mode()) {
    case ClosureMode::kNodeMask:
      return node_mask_reachable(s, dest_index);
    case ClosureMode::kCompressed: {
      const CompressedRow* row = compressed_row(dest_index, nullptr);
      if (row->is_bitset()) {
        return row_bit(row->words.data(), s);
      }
      return std::binary_search(row->ids.begin(), row->ids.end(),
                                static_cast<std::uint32_t>(s));
    }
    default: {
      ensure_dense(nullptr);
      return row_bit(closure_.data() + dest_index * closure_words_, s);
    }
  }
}

const std::uint64_t* RoutingFunction::closure_row(
    std::size_t dest_index, ClosureRowScratch& scratch) const {
  const std::size_t words = closure_row_words();
  switch (resolved_mode()) {
    case ClosureMode::kNodeMask: {
      if (scratch.sweeper_owner_ != this) {
        scratch.sweeper_ = std::make_unique<RouteSweeper>(*this);
        scratch.sweeper_owner_ = this;
        scratch.cached_dest_ = static_cast<std::size_t>(-1);
      }
      if (scratch.cached_dest_ == dest_index &&
          scratch.words_.size() == words) {
        return scratch.words_.data();
      }
      scratch.words_.assign(words, 0);
      scratch.sweeper_->sweep(dest_index, nullptr, scratch.words_.data());
      scratch.cached_dest_ = dest_index;
      rows_built_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& rows =
          obs::MetricsRegistry::global().counter("closure.rows_built");
      rows.increment();
      return scratch.words_.data();
    }
    case ClosureMode::kCompressed: {
      const CompressedRow* row = compressed_row(dest_index, nullptr);
      if (row->is_bitset()) {
        return row->words.data();
      }
      scratch.words_.assign(words, 0);
      for (const std::uint32_t pid : row->ids) {
        scratch.words_[pid >> 6] |= std::uint64_t{1} << (pid & 63);
      }
      scratch.cached_dest_ = dest_index;
      return scratch.words_.data();
    }
    default:
      ensure_dense(nullptr);
      return closure_.data() + dest_index * closure_words_;
  }
}

void RoutingFunction::ensure_dense(ThreadPool* pool) const {
  std::call_once(dense_once_, [this, pool] {
    // One per-destination sweep fills one bitset row; the sweep itself
    // takes care of seeding at the terminal IN ports and of skipping
    // non-existent hops (a (C-1)-detectable bug the closure must not
    // propagate through).
    const std::size_t dest_count = topo_->destination_count();
    closure_words_ = closure_row_words();
    closure_.assign(dest_count * closure_words_, 0);
    const auto build_range = [this](std::size_t begin, std::size_t end) {
      RouteSweeper sweeper(*this);
      for (std::size_t dest = begin; dest < end; ++dest) {
        sweeper.sweep(dest, nullptr, closure_.data() + dest * closure_words_);
      }
    };
    if (pool != nullptr) {
      pool->parallel_for(dest_count, pool->recommended_grain(dest_count),
                         build_range);
    } else {
      build_range(0, dest_count);
    }
    rows_built_.fetch_add(dest_count, std::memory_order_relaxed);
    const std::uint64_t total =
        bytes_.fetch_add(closure_.capacity() * sizeof(std::uint64_t),
                         std::memory_order_relaxed) +
        closure_.capacity() * sizeof(std::uint64_t);
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
    metrics.counter("closure.rows_built").add(dest_count);
    metrics.gauge("closure.bytes").record_max(static_cast<std::int64_t>(total));
  });
}

void RoutingFunction::prime_closure(ThreadPool* pool) const {
  obs::TraceSpan span("artifact:closure");
  obs::MetricsRegistry::global()
      .gauge("closure.dense_bytes")
      .record_max(static_cast<std::int64_t>(closure_dense_bytes()));
  switch (resolved_mode()) {
    case ClosureMode::kNodeMask:
      // Zero storage: membership derives from out_mask_id on the fly and
      // rows materialize in caller scratches. Nothing to pre-build.
      break;
    case ClosureMode::kCompressed: {
      ensure_rows_allocated();
      const std::size_t dest_count = topo_->destination_count();
      const auto build_range = [this](std::size_t begin, std::size_t end) {
        RouteSweeper sweeper(*this);
        for (std::size_t dest = begin; dest < end; ++dest) {
          compressed_row(dest, &sweeper);
        }
      };
      if (pool != nullptr) {
        pool->parallel_for(dest_count, pool->recommended_grain(dest_count),
                           build_range);
      } else {
        build_range(0, dest_count);
      }
      break;
    }
    default:
      ensure_dense(pool);
      break;
  }
}

void RoutingFunction::prime() const {
  if (needs_prime()) {
    prime_closure(nullptr);
  }
}

void RoutingFunction::prime(ThreadPool& pool) const {
  if (needs_prime()) {
    prime_closure(&pool);
  }
}

}  // namespace genoc
