#include "routing/routing.hpp"

#include "routing/sweep.hpp"
#include "util/require.hpp"

namespace genoc {

bool RoutingFunction::valid_endpoints(const Port& s, const Port& d) const {
  return mesh_->exists(s) && d.name == PortName::kLocal &&
         d.dir == Direction::kOut && mesh_->exists(d);
}

std::uint8_t RoutingFunction::node_out_mask(std::int32_t /*x*/,
                                            std::int32_t /*y*/,
                                            const Port& /*dest*/) const {
  GENOC_REQUIRE(false, "node_out_mask requires a node_uniform() routing "
                       "function (" + name() + " is not)");
  return 0;
}

bool RoutingFunction::closure_reachable(const Port& s, const Port& d) const {
  if (!valid_endpoints(s, d)) {
    return false;
  }
  build_closure();
  const auto dest_index = static_cast<std::size_t>(d.y) *
                              static_cast<std::size_t>(mesh_->width()) +
                          static_cast<std::size_t>(d.x);
  const PortId sid = mesh_->id(s);
  const std::uint64_t word =
      closure_[dest_index * closure_words_ + (sid >> 6)];
  return ((word >> (sid & 63)) & 1u) != 0;
}

void RoutingFunction::build_closure() const {
  if (closure_built_) {
    return;
  }
  // One per-destination sweep fills one bitset row; the sweep itself takes
  // care of seeding at the Local IN ports and of skipping non-existent
  // hops (a (C-1)-detectable bug the closure must not propagate through).
  RouteSweeper sweeper(*this);
  closure_words_ = sweeper.row_words();
  closure_.assign(mesh_->node_count() * closure_words_, 0);
  for (std::size_t dest = 0; dest < mesh_->node_count(); ++dest) {
    sweeper.sweep(dest, nullptr, closure_.data() + dest * closure_words_);
  }
  closure_built_ = true;
}

}  // namespace genoc
