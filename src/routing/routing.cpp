#include "routing/routing.hpp"

#include <queue>

#include "util/require.hpp"

namespace genoc {

bool RoutingFunction::valid_endpoints(const Port& s, const Port& d) const {
  return mesh_->exists(s) && d.name == PortName::kLocal &&
         d.dir == Direction::kOut && mesh_->exists(d);
}

bool RoutingFunction::closure_reachable(const Port& s, const Port& d) const {
  if (!valid_endpoints(s, d)) {
    return false;
  }
  build_closure();
  const auto dest_index = static_cast<std::size_t>(d.y) *
                              static_cast<std::size_t>(mesh_->width()) +
                          static_cast<std::size_t>(d.x);
  return closure_[dest_index][mesh_->id(s)];
}

void RoutingFunction::build_closure() const {
  if (closure_built_) {
    return;
  }
  closure_.assign(mesh_->node_count(),
                  std::vector<bool>(mesh_->port_count(), false));
  for (const Port& dest : mesh_->destinations()) {
    const auto dest_index = static_cast<std::size_t>(dest.y) *
                                static_cast<std::size_t>(mesh_->width()) +
                            static_cast<std::size_t>(dest.x);
    auto& seen = closure_[dest_index];
    std::queue<Port> frontier;
    // Messages enter the network at Local IN ports; every port a route can
    // visit from there (under this destination) is reachable-consistent.
    for (const Port& source : mesh_->sources()) {
      seen[mesh_->id(source)] = true;
      frontier.push(source);
    }
    while (!frontier.empty()) {
      const Port p = frontier.front();
      frontier.pop();
      for (const Port& hop : next_hops(p, dest)) {
        // A routing function may only produce existing ports for reachable
        // inputs; a violation here is a (C-1)-detectable bug, and the
        // closure simply does not propagate through it.
        if (!mesh_->exists(hop)) {
          continue;
        }
        const PortId hop_id = mesh_->id(hop);
        if (!seen[hop_id]) {
          seen[hop_id] = true;
          frontier.push(hop);
        }
      }
    }
  }
  closure_built_ = true;
}

}  // namespace genoc
