#include "routing/routing.hpp"

#include "routing/sweep.hpp"
#include "util/require.hpp"

namespace genoc {

bool RoutingFunction::valid_endpoints(const Port& s, const Port& d) const {
  const Mesh2D& m = mesh();
  return m.exists(s) && d.name == PortName::kLocal &&
         d.dir == Direction::kOut && m.exists(d);
}

void RoutingFunction::append_next_hops(const Port& /*current*/,
                                       const Port& /*dest*/,
                                       std::vector<Port>& /*out*/) const {
  GENOC_REQUIRE(false, "append_next_hops is the grid Port-tuple API; " +
                           name() + " is id-native — use append_next_hop_ids");
}

void RoutingFunction::append_next_hop_ids(PortId /*current*/,
                                          std::size_t /*dest_index*/,
                                          std::vector<PortId>& /*out*/) const {
  GENOC_REQUIRE(false, "append_next_hop_ids must be implemented by id-native "
                       "routing functions (" + name() + ")");
}

void RoutingFunction::next_hop_ids_into(PortId current, std::size_t dest_index,
                                        std::vector<PortId>& out,
                                        std::vector<Port>& scratch) const {
  if (id_native()) {
    append_next_hop_ids(current, dest_index, out);
    return;
  }
  const Mesh2D& m = mesh();
  scratch.clear();
  append_next_hops(m.port(current), m.port(topo_->destination_id(dest_index)),
                   scratch);
  for (const Port& hop : scratch) {
    // A routing function may only produce existing ports for reachable
    // inputs; a violation is a (C-1)-detectable bug the id layer neither
    // records nor propagates through.
    const std::int32_t qid = m.try_id(hop);
    if (qid >= 0) {
      out.push_back(static_cast<PortId>(qid));
    }
  }
}

std::uint8_t RoutingFunction::node_out_mask(std::int32_t /*x*/,
                                            std::int32_t /*y*/,
                                            const Port& /*dest*/) const {
  GENOC_REQUIRE(false, "node_out_mask requires a node_uniform() routing "
                       "function (" + name() + " is not)");
  return 0;
}

std::uint64_t RoutingFunction::out_mask_id(std::size_t node,
                                           std::size_t dest_index) const {
  const Mesh2D& m = mesh();  // id-native functions must override
  const auto width = static_cast<std::size_t>(m.width());
  return node_out_mask(static_cast<std::int32_t>(node % width),
                       static_cast<std::int32_t>(node / width),
                       m.port(topo_->destination_id(dest_index)));
}

bool RoutingFunction::reachable_id(PortId s, std::size_t dest_index) const {
  if (!id_native() && grid_ != nullptr) {
    return reachable(grid_->port(s),
                     grid_->port(topo_->destination_id(dest_index)));
  }
  return closure_reachable_id(s, dest_index);
}

bool RoutingFunction::closure_reachable(const Port& s, const Port& d) const {
  if (!valid_endpoints(s, d)) {
    return false;
  }
  // One terminal per node, enumerated node-major: the dest index of a grid
  // Local OUT port is its row-major node index.
  const auto dest_index = static_cast<std::size_t>(d.y) *
                              static_cast<std::size_t>(grid_->width()) +
                          static_cast<std::size_t>(d.x);
  return closure_reachable_id(grid_->id(s), dest_index);
}

bool RoutingFunction::closure_reachable_id(PortId s,
                                           std::size_t dest_index) const {
  build_closure();
  const std::uint64_t word = closure_[dest_index * closure_words_ + (s >> 6)];
  return ((word >> (s & 63)) & 1u) != 0;
}

void RoutingFunction::build_closure() const {
  if (closure_built_) {
    return;
  }
  // One per-destination sweep fills one bitset row; the sweep itself takes
  // care of seeding at the terminal IN ports and of skipping non-existent
  // hops (a (C-1)-detectable bug the closure must not propagate through).
  RouteSweeper sweeper(*this);
  closure_words_ = sweeper.row_words();
  closure_.assign(topo_->destination_count() * closure_words_, 0);
  for (std::size_t dest = 0; dest < topo_->destination_count(); ++dest) {
    sweeper.sweep(dest, nullptr, closure_.data() + dest * closure_words_);
  }
  closure_built_ = true;
}

}  // namespace genoc
