/// \file xy.hpp
/// \brief The paper's XY routing function Rxy (Section V.3) with its
///        closed-form reachability relation.
///
/// Packets are routed first along the x-axis to the correct column, then
/// along the y-axis to the correct node (HERMES' deterministic minimal
/// policy). At port level:
///
///   Rxy(p, d) = next_in(p)      if dir(p) = OUT
///             | trans(p, W,OUT) if x(d) < x(p)
///             | trans(p, E,OUT) if x(d) > x(p)
///             | trans(p, N,OUT) if y(d) < y(p)
///             | trans(p, S,OUT) if y(d) > y(p)
///             | trans(p, L,OUT) otherwise
#pragma once

#include "routing/routing.hpp"

namespace genoc {

class XYRouting final : public RoutingFunction {
 public:
  explicit XYRouting(const Mesh2D& mesh) : RoutingFunction(mesh) {}

  std::string name() const override { return "XY"; }
  bool is_deterministic() const override { return true; }

  void append_next_hops(const Port& current, const Port& dest,
                        std::vector<Port>& out) const override;

  /// XY decides from the node coordinates alone (the in-port name never
  /// enters the formula), OUT ports forward along their link.
  bool node_uniform() const override { return true; }
  std::uint8_t node_out_mask(std::int32_t x, std::int32_t y,
                             const Port& dest) const override;

  /// Closed-form s R d for XY routing: d is an existing Local OUT port and
  /// s's port class is consistent with XY history (horizontal phase first,
  /// then vertical):
  ///   - L,IN: any destination;
  ///   - L,OUT: only d == s (the message has arrived);
  ///   - W,IN (travelling east):  x(d) >= x(s);
  ///   - E,IN (travelling west):  x(d) <= x(s);
  ///   - N,IN (travelling south): x(d) = x(s) and y(d) >= y(s);
  ///   - S,IN (travelling north): x(d) = x(s) and y(d) <= y(s);
  ///   - E,OUT: x(d) >= x(s)+1;   W,OUT: x(d) <= x(s)-1;
  ///   - N,OUT: x(d) = x(s) and y(d) <= y(s)-1;
  ///   - S,OUT: x(d) = x(s) and y(d) >= y(s)+1.
  /// Cross-validated against closure_reachable() in the test suite.
  bool reachable(const Port& s, const Port& d) const override;

  /// reachable() is closed-form and node-granular queries are storage-free:
  /// nothing to pre-build for parallel use.
  bool needs_prime() const override { return false; }

  /// The paper's Sec. V.6 next_outs table, i.e. the exact over-all-dests
  /// union of out-names per in-name — enables the O(ports) analytic
  /// dependency-graph build. Pure full meshes only: on wrapped grids the
  /// closed-form history claims ports (e.g. a wrap-fed W,IN at x = 0) no
  /// route semantically visits, and on faulted meshes routes dead-end at
  /// the fault so the full-grid table over-approximates — both stay on the
  /// per-destination sweep (faulted variants take the delta build).
  bool has_in_port_unions() const override {
    return topology().family() == "mesh" && !mesh().has_faults();
  }
  std::uint64_t in_port_union(std::size_t node,
                              std::size_t in_name) const override;
};

}  // namespace genoc
