#include "routing/negative_first.hpp"

namespace genoc {

void NegativeFirstRouting::append_out_choices(const Port& current,
                                              const Port& dest,
                                              std::vector<Port>& out) const {
  const std::size_t before = out.size();
  if (dest.x < current.x) {
    out.push_back(trans(current, PortName::kWest, Direction::kOut));
  }
  if (dest.y < current.y) {
    out.push_back(trans(current, PortName::kNorth, Direction::kOut));
  }
  if (out.size() != before) {
    return;
  }
  if (dest.x > current.x) {
    out.push_back(trans(current, PortName::kEast, Direction::kOut));
  }
  if (dest.y > current.y) {
    out.push_back(trans(current, PortName::kSouth, Direction::kOut));
  }
}

std::uint8_t NegativeFirstRouting::node_out_mask(std::int32_t x,
                                                 std::int32_t y,
                                                 const Port& dest) const {
  std::uint8_t negative = 0;
  if (dest.x < x) {
    negative |= port_name_bit(PortName::kWest);
  }
  if (dest.y < y) {
    negative |= port_name_bit(PortName::kNorth);
  }
  if (negative != 0) {
    return negative;
  }
  std::uint8_t positive = 0;
  if (dest.x > x) {
    positive |= port_name_bit(PortName::kEast);
  }
  if (dest.y > y) {
    positive |= port_name_bit(PortName::kSouth);
  }
  return positive != 0 ? positive : port_name_bit(PortName::kLocal);
}

}  // namespace genoc
