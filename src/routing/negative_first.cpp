#include "routing/negative_first.hpp"

namespace genoc {

std::vector<Port> NegativeFirstRouting::out_choices(const Port& current,
                                                    const Port& dest) const {
  std::vector<Port> negative;
  if (dest.x < current.x) {
    negative.push_back(trans(current, PortName::kWest, Direction::kOut));
  }
  if (dest.y < current.y) {
    negative.push_back(trans(current, PortName::kNorth, Direction::kOut));
  }
  if (!negative.empty()) {
    return negative;
  }
  std::vector<Port> positive;
  if (dest.x > current.x) {
    positive.push_back(trans(current, PortName::kEast, Direction::kOut));
  }
  if (dest.y > current.y) {
    positive.push_back(trans(current, PortName::kSouth, Direction::kOut));
  }
  return positive;
}

}  // namespace genoc
