#include "routing/dragonfly_min.hpp"

namespace genoc {

std::size_t DragonflyMinRouting::route_name(std::size_t node,
                                            PortId dest) const {
  const DragonflyTopology& t = *fly_;
  const std::size_t dnode = t.node_of(dest);
  if (node == dnode) {
    return t.name_of(dest);  // eject at the destination terminal
  }
  const std::size_t group = t.group_of(node);
  const std::size_t rr = t.router_of(node);
  const std::size_t dgroup = t.group_of(dnode);
  if (group == dgroup) {
    return t.local_name(rr, t.router_of(dnode));
  }
  const std::size_t channel = t.channel_to(group, dgroup);
  const std::size_t owner = t.channel_owner(channel);
  if (rr == owner) {
    return t.global_name(channel % t.global_ports());
  }
  return t.local_name(rr, owner);  // local hop to the channel's owner
}

std::uint64_t DragonflyMinRouting::out_mask_id(std::size_t node,
                                               std::size_t dest_index) const {
  return std::uint64_t{1}
         << route_name(node, topology().destination_id(dest_index));
}

void DragonflyMinRouting::append_next_hop_ids(PortId current,
                                              std::size_t dest_index,
                                              std::vector<PortId>& out) const {
  const DragonflyTopology& t = *fly_;
  const PortId dest = t.destination_id(dest_index);
  if (t.dir_of(current) == Direction::kOut) {
    const PortId target = t.link_target(current);
    if (target != kInvalidPort) {
      out.push_back(target);  // forward along the (local or global) link
    }
    return;  // terminal out-ports drain into their core
  }
  out.push_back(
      t.slot_id(t.node_of(current), route_name(t.node_of(current), dest),
                Direction::kOut));
}

}  // namespace genoc
