/// \file cmesh_dor.hpp
/// \brief Dimension-ordered routing on the concentrated mesh.
///
/// The XY discipline lifted to cmesh: route X first, then Y, then eject at
/// the destination terminal. Node-uniform and deterministic; because the
/// dimension order forbids Y->X turns exactly like grid XY, the dependency
/// graph stays acyclic — the terminals only contribute source/sink edges —
/// and Theorem 1 applies directly. The first id-native RoutingFunction:
/// it speaks PortIds and dest indices, never the grid Port tuple.
#pragma once

#include <string>

#include "routing/routing.hpp"
#include "topology/cmesh.hpp"

namespace genoc {

class CMeshDORRouting final : public RoutingFunction {
 public:
  explicit CMeshDORRouting(const CMeshTopology& topology)
      : RoutingFunction(topology), cmesh_(&topology) {}

  std::string name() const override { return "CMesh-DOR"; }
  bool is_deterministic() const override { return true; }
  bool id_native() const override { return true; }
  bool node_uniform() const override { return true; }

  std::uint64_t out_mask_id(std::size_t node,
                            std::size_t dest_index) const override;
  void append_next_hop_ids(PortId current, std::size_t dest_index,
                           std::vector<PortId>& out) const override;

 private:
  /// The single out-port name chosen at \p node toward destination port
  /// \p dest (X first, then Y, then the terminal).
  std::size_t route_name(std::size_t node, PortId dest) const;

  const CMeshTopology* cmesh_;
};

}  // namespace genoc
