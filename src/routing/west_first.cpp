#include "routing/west_first.hpp"

namespace genoc {

std::vector<Port> WestFirstRouting::out_choices(const Port& current,
                                                const Port& dest) const {
  // Phase 1: any pending westbound hop must be taken before anything else.
  if (dest.x < current.x) {
    return {trans(current, PortName::kWest, Direction::kOut)};
  }
  // Phase 2: fully adaptive among the productive non-West directions.
  std::vector<Port> choices;
  if (dest.x > current.x) {
    choices.push_back(trans(current, PortName::kEast, Direction::kOut));
  }
  if (dest.y < current.y) {
    choices.push_back(trans(current, PortName::kNorth, Direction::kOut));
  }
  if (dest.y > current.y) {
    choices.push_back(trans(current, PortName::kSouth, Direction::kOut));
  }
  return choices;
}

}  // namespace genoc
