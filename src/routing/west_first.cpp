#include "routing/west_first.hpp"

namespace genoc {

void WestFirstRouting::append_out_choices(const Port& current,
                                          const Port& dest,
                                          std::vector<Port>& out) const {
  // Phase 1: any pending westbound hop must be taken before anything else.
  if (dest.x < current.x) {
    out.push_back(trans(current, PortName::kWest, Direction::kOut));
    return;
  }
  // Phase 2: fully adaptive among the productive non-West directions.
  if (dest.x > current.x) {
    out.push_back(trans(current, PortName::kEast, Direction::kOut));
  }
  if (dest.y < current.y) {
    out.push_back(trans(current, PortName::kNorth, Direction::kOut));
  }
  if (dest.y > current.y) {
    out.push_back(trans(current, PortName::kSouth, Direction::kOut));
  }
}

std::uint8_t WestFirstRouting::node_out_mask(std::int32_t x, std::int32_t y,
                                             const Port& dest) const {
  if (dest.x < x) {
    return port_name_bit(PortName::kWest);
  }
  std::uint8_t mask = 0;
  if (dest.x > x) {
    mask |= port_name_bit(PortName::kEast);
  }
  if (dest.y < y) {
    mask |= port_name_bit(PortName::kNorth);
  }
  if (dest.y > y) {
    mask |= port_name_bit(PortName::kSouth);
  }
  return mask != 0 ? mask : port_name_bit(PortName::kLocal);
}

}  // namespace genoc
