/// \file west_first.hpp
/// \brief West-First turn-model routing (Glass & Ni), minimal variant.
///
/// All westbound hops happen first (deterministically); once the message is
/// at or east of its destination column it routes fully adaptively among the
/// remaining productive directions. The prohibited turns are exactly the two
/// turns into West, which breaks all dependency cycles — the port dependency
/// graph stays acyclic, as the test suite verifies.
#pragma once

#include "routing/adaptive.hpp"

namespace genoc {

class WestFirstRouting final : public AdaptiveRouting {
 public:
  explicit WestFirstRouting(const Mesh2D& mesh) : AdaptiveRouting(mesh) {}

  std::string name() const override { return "West-First"; }

  /// The west-first phases read only the node coordinates.
  bool node_uniform() const override { return true; }
  std::uint8_t node_out_mask(std::int32_t x, std::int32_t y,
                             const Port& dest) const override;

 protected:
  void append_out_choices(const Port& current, const Port& dest,
                          std::vector<Port>& out) const override;
};

}  // namespace genoc
