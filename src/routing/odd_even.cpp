#include "routing/odd_even.hpp"

namespace genoc {

namespace {

bool odd(std::int32_t x) { return (x % 2) != 0; }

}  // namespace

/// Port-level Odd-Even (after Chiu's ROUTE function). The restricted turns
/// are EN/ES (only legal in odd columns) and NW/SW (only legal in even
/// columns); WN/WS and NE/SE are free. The in-port name tells us how the
/// packet is travelling, which replaces Chiu's source-column bookkeeping:
///  - entering vertically from a Local IN port is an injection, not a turn;
///  - continuing along a vertical flow is not a turn either;
///  - a westbound or injected packet may only start vertical movement in an
///    even column when west hops remain (it must later take an NW/SW turn
///    in that same column);
///  - an eastbound move is forbidden when it would strand the packet one
///    hop west of an even destination column with vertical hops remaining
///    (the EN/ES turn there would be illegal).
void OddEvenRouting::append_out_choices(const Port& current,
                                        const Port& dest,
                                        std::vector<Port>& out) const {
  const std::int32_t ex = dest.x - current.x;
  const std::int32_t ey = dest.y - current.y;
  const bool odd_column = odd(current.x);

  auto vertical = [&]() {
    return trans(current, ey < 0 ? PortName::kNorth : PortName::kSouth,
                 Direction::kOut);
  };
  auto east = [&] { return trans(current, PortName::kEast, Direction::kOut); };
  auto west = [&] { return trans(current, PortName::kWest, Direction::kOut); };
  // Going east is safe unless the packet would arrive at an even
  // destination column still needing an (illegal) EN/ES turn there.
  const bool east_safe = (ey == 0) || (ex > 1) || odd(dest.x);

  switch (current.name) {
    case PortName::kLocal:
      // Injection: entering any direction is not a turn, but the packet
      // must not be painted into a corner.
      if (ex > 0) {
        if (ey != 0) {
          out.push_back(vertical());
        }
        if (east_safe) {
          out.push_back(east());
        }
      } else if (ex < 0) {
        if (ey != 0 && !odd_column) {
          out.push_back(vertical());
        }
        out.push_back(west());
      } else {
        out.push_back(vertical());  // ey != 0 here (dest node handled)
      }
      break;

    case PortName::kWest:
      // Eastbound packet. EN/ES turns need an odd column.
      if (ex == 0) {
        // Arrived at the destination column; the east_safe guard ensures
        // this only happens where the turn is legal.
        out.push_back(vertical());
      } else {
        if (ey != 0 && odd_column) {
          out.push_back(vertical());
        }
        if (east_safe) {
          out.push_back(east());
        }
      }
      break;

    case PortName::kEast:
      // Westbound packet. WN/WS turns are free, but starting vertical
      // movement with west hops remaining requires an even column (the
      // NW/SW turn back happens in the same column).
      if (ex == 0) {
        out.push_back(vertical());
      } else {
        if (ey != 0 && !odd_column) {
          out.push_back(vertical());
        }
        out.push_back(west());
      }
      break;

    case PortName::kNorth:
    case PortName::kSouth:
      // Vertical packet. Continuing straight is not a turn; NE/SE east
      // turns are free (modulo the east_safe guard); NW/SW west turns need
      // an even column.
      if (ey != 0) {
        out.push_back(vertical());
      }
      if (ex > 0 && east_safe) {
        out.push_back(east());
      }
      if (ex < 0 && !odd_column) {
        out.push_back(west());
      }
      break;
  }
}

}  // namespace genoc
