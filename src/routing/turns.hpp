/// \file turns.hpp
/// \brief The static prohibited-turn sets of the grid routing disciplines.
///
/// A turn is the pair (travel, out): the cardinal direction a message is
/// travelling when it occupies an in-port (the opposite of the in-port's
/// name — a message sitting in a West in-port arrived over the West link,
/// so it travels East) and the cardinal out-port it selects next. Each
/// turn-model discipline (Glass-Ni west-first / north-last /
/// negative-first, Chiu's odd-even) and each dimension-order discipline
/// (XY, YX, shortest-way torus-XY) is DEFINED by the turns it forbids;
/// the implementations in this directory encode the sets operationally,
/// and this header states them declaratively so the static analyzer's
/// turn-conformance rule can lint emitted turns against the model instead
/// of rediscovering violations inside the verify pipeline.
///
/// Coordinate convention matches port.hpp: North DECREASES y, so the
/// "negative" directions of negative-first are West (x) and North (y).
#pragma once

#include <cstdint>
#include <string>

#include "topology/port.hpp"

namespace genoc {

/// True iff \p routing (canonical spec name, e.g. "west_first") has a
/// static turn discipline this header can state: the four turn models plus
/// the dimension-order families. Adaptive functions without a turn
/// discipline ("fully_adaptive") and the non-grid families are not listed.
bool has_turn_discipline(const std::string& routing);

/// True iff discipline \p routing forbids the (\p travel -> \p out) turn at
/// a node in column \p x. Requires cardinal names. Only odd-even consults
/// the column (its EN/ES turns need an odd column, its NW/SW turns an even
/// one); every discipline forbids the 180-degree reversal turns, which no
/// minimal function may emit. Continuing straight (travel == out) is never
/// a turn.
bool turn_prohibited(const std::string& routing, std::int32_t x,
                     PortName travel, PortName out);

}  // namespace genoc
