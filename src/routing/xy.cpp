#include "routing/xy.hpp"

namespace genoc {

std::vector<Port> XYRouting::next_hops(const Port& current,
                                       const Port& dest) const {
  if (current.dir == Direction::kOut) {
    if (current.name == PortName::kLocal) {
      return {};  // delivered: Local OUT ports hand the message to the core
    }
    return {mesh().next_in(current)};
  }
  if (dest.x < current.x) {
    return {trans(current, PortName::kWest, Direction::kOut)};
  }
  if (dest.x > current.x) {
    return {trans(current, PortName::kEast, Direction::kOut)};
  }
  if (dest.y < current.y) {
    return {trans(current, PortName::kNorth, Direction::kOut)};
  }
  if (dest.y > current.y) {
    return {trans(current, PortName::kSouth, Direction::kOut)};
  }
  return {trans(current, PortName::kLocal, Direction::kOut)};
}

bool XYRouting::reachable(const Port& s, const Port& d) const {
  if (!valid_endpoints(s, d)) {
    return false;
  }
  switch (s.name) {
    case PortName::kLocal:
      return s.dir == Direction::kIn ? true : s == d;
    case PortName::kWest:
      return s.dir == Direction::kIn ? d.x >= s.x : d.x <= s.x - 1;
    case PortName::kEast:
      return s.dir == Direction::kIn ? d.x <= s.x : d.x >= s.x + 1;
    case PortName::kNorth:
      // N,IN receives southbound traffic; N,OUT sends northbound (y - 1).
      return d.x == s.x &&
             (s.dir == Direction::kIn ? d.y >= s.y : d.y <= s.y - 1);
    case PortName::kSouth:
      return d.x == s.x &&
             (s.dir == Direction::kIn ? d.y <= s.y : d.y >= s.y + 1);
  }
  return false;
}

}  // namespace genoc
