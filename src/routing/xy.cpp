#include "routing/xy.hpp"

namespace genoc {

void XYRouting::append_next_hops(const Port& current, const Port& dest,
                                 std::vector<Port>& out) const {
  if (current.dir == Direction::kOut) {
    if (current.name == PortName::kLocal) {
      return;  // delivered: Local OUT ports hand the message to the core
    }
    out.push_back(mesh().next_in(current));
    return;
  }
  if (dest.x < current.x) {
    out.push_back(trans(current, PortName::kWest, Direction::kOut));
  } else if (dest.x > current.x) {
    out.push_back(trans(current, PortName::kEast, Direction::kOut));
  } else if (dest.y < current.y) {
    out.push_back(trans(current, PortName::kNorth, Direction::kOut));
  } else if (dest.y > current.y) {
    out.push_back(trans(current, PortName::kSouth, Direction::kOut));
  } else {
    out.push_back(trans(current, PortName::kLocal, Direction::kOut));
  }
}

std::uint8_t XYRouting::node_out_mask(std::int32_t x, std::int32_t y,
                                      const Port& dest) const {
  if (dest.x < x) {
    return port_name_bit(PortName::kWest);
  }
  if (dest.x > x) {
    return port_name_bit(PortName::kEast);
  }
  if (dest.y < y) {
    return port_name_bit(PortName::kNorth);
  }
  if (dest.y > y) {
    return port_name_bit(PortName::kSouth);
  }
  return port_name_bit(PortName::kLocal);
}

std::uint64_t XYRouting::in_port_union(std::size_t node,
                                       std::size_t in_name) const {
  // Union over every destination of node_out_mask restricted to the dests
  // reachable through this in-port (the paper's next_outs table), made
  // position-exact: a direction only appears when some destination lies
  // that way, so the table never claims a boundary (or wrap) out-port a
  // route can select. Horizontal phase first: vertical in-ports have
  // already corrected x, so they only continue vertically or deliver.
  const Mesh2D& m = mesh();
  const auto width = static_cast<std::size_t>(m.width());
  const auto height = static_cast<std::size_t>(m.height());
  const std::size_t x = node % width;
  const std::size_t y = node / width;
  const std::uint64_t west = x > 0 ? port_name_bit(PortName::kWest) : 0;
  const std::uint64_t east = x + 1 < width ? port_name_bit(PortName::kEast) : 0;
  const std::uint64_t north = y > 0 ? port_name_bit(PortName::kNorth) : 0;
  const std::uint64_t south =
      y + 1 < height ? port_name_bit(PortName::kSouth) : 0;
  const std::uint64_t local = port_name_bit(PortName::kLocal);
  switch (static_cast<PortName>(in_name)) {
    case PortName::kLocal:  // any destination
      return west | east | north | south | local;
    case PortName::kWest:  // eastbound: x(d) >= x
      return east | north | south | local;
    case PortName::kEast:  // westbound: x(d) <= x
      return west | north | south | local;
    case PortName::kNorth:  // southbound, column locked: only S or deliver
      return south | local;
    case PortName::kSouth:  // northbound, column locked
      return north | local;
  }
  return 0;
}

bool XYRouting::reachable(const Port& s, const Port& d) const {
  // The closed form assumes every route of the full grid exists; with
  // failed links routes dead-end at the fault, so ports past it are
  // claimed that no route visits. Fall back to the semantic closure
  // (storage-free node-granular tier — still no prime needed).
  if (mesh().has_faults()) {
    return closure_reachable(s, d);
  }
  if (!valid_endpoints(s, d)) {
    return false;
  }
  switch (s.name) {
    case PortName::kLocal:
      return s.dir == Direction::kIn ? true : s == d;
    case PortName::kWest:
      return s.dir == Direction::kIn ? d.x >= s.x : d.x <= s.x - 1;
    case PortName::kEast:
      return s.dir == Direction::kIn ? d.x <= s.x : d.x >= s.x + 1;
    case PortName::kNorth:
      // N,IN receives southbound traffic; N,OUT sends northbound (y - 1).
      return d.x == s.x &&
             (s.dir == Direction::kIn ? d.y >= s.y : d.y <= s.y - 1);
    case PortName::kSouth:
      return d.x == s.x &&
             (s.dir == Direction::kIn ? d.y <= s.y : d.y >= s.y + 1);
  }
  return false;
}

}  // namespace genoc
