#include "routing/sweep.hpp"

#include <bit>

#include "util/require.hpp"

namespace genoc {

namespace {

inline void set_bit(std::uint64_t* row, PortId pid) {
  row[pid >> 6] |= std::uint64_t{1} << (pid & 63);
}

}  // namespace

RouteSweeper::RouteSweeper(const RoutingFunction& routing)
    : routing_(&routing),
      mesh_(&routing.mesh()),
      port_count_(routing.mesh().port_count()),
      node_count_(routing.mesh().node_count()),
      node_mode_(routing.node_uniform()) {
  stamp_.assign(port_count_, 0);
  emitted_.assign(port_count_, 0);
  slot_ids_.assign(node_count_ * kPortSlotsPerNode, kNoPort);
  link_to_.assign(port_count_, kNoPort);
  exist_out_.assign(node_count_, 0);
  mask_.assign(node_count_, 0);
  const std::size_t width = static_cast<std::size_t>(mesh_->width());
  for (PortId pid = 0; pid < port_count_; ++pid) {
    const Port& p = mesh_->port(pid);
    const std::size_t node =
        static_cast<std::size_t>(p.y) * width + static_cast<std::size_t>(p.x);
    slot_ids_[node * kPortSlotsPerNode + port_slot(p.name, p.dir)] = pid;
    if (p.dir == Direction::kOut) {
      exist_out_[node] |= port_name_bit(p.name);
      if (p.name != PortName::kLocal) {
        link_to_[pid] = mesh_->id(mesh_->next_in(p));
      }
    }
  }
}

void RouteSweeper::sweep(std::size_t dest_node, std::vector<Edge>* edges,
                         std::uint64_t* row) {
  GENOC_REQUIRE(dest_node < node_count_, "destination node out of range");
  const auto width = static_cast<std::size_t>(mesh_->width());
  const Port dest = mesh_->local_out(
      static_cast<std::int32_t>(dest_node % width),
      static_cast<std::int32_t>(dest_node / width));
  if (node_mode_) {
    sweep_nodes(dest, edges, row);
  } else {
    sweep_ports(dest, edges, row);
  }
}

void RouteSweeper::emit_in_edges(PortId pid, const PortId* slots,
                                 std::uint8_t mask,
                                 std::vector<Edge>& edges) {
  std::uint8_t fresh = mask & static_cast<std::uint8_t>(~emitted_[pid]);
  if (fresh == 0) {
    return;
  }
  emitted_[pid] |= fresh;
  do {
    const unsigned name = std::countr_zero(fresh);
    edges.emplace_back(
        pid, slots[name * 2 + static_cast<std::size_t>(Direction::kOut)]);
    fresh &= static_cast<std::uint8_t>(fresh - 1);
  } while (fresh != 0);
}

void RouteSweeper::sweep_nodes(const Port& dest, std::vector<Edge>* edges,
                               std::uint64_t* row) {
  ++epoch_;
  frontier_.clear();
  constexpr std::uint8_t kLocalBit = port_name_bit(PortName::kLocal);
  constexpr auto kOut = static_cast<std::size_t>(Direction::kOut);
  constexpr auto kIn = static_cast<std::size_t>(Direction::kIn);

  // Pass 1: one mask per node decides the out-ports of every in-port of
  // that node; selected cardinal out-ports mark the in-port their link
  // drives (the route tree's hops). Local IN ports are always visited
  // (messages inject everywhere), so their edges emit right here.
  std::size_t node = 0;
  const PortId* slots = slot_ids_.data();
  for (std::int32_t y = 0; y < mesh_->height(); ++y) {
    for (std::int32_t x = 0; x < mesh_->width(); ++x, ++node,
                      slots += kPortSlotsPerNode) {
      // Non-existent out-ports drop out of the mask, mirroring the
      // generic construction's exists() filter.
      const std::uint8_t mask = static_cast<std::uint8_t>(
          routing_->node_out_mask(x, y, dest) & exist_out_[node]);
      mask_[node] = mask;
      const PortId lin =
          slots[static_cast<std::size_t>(PortName::kLocal) * 2 + kIn];
      if (row != nullptr) {
        set_bit(row, lin);
      }
      if (edges != nullptr) {
        emit_in_edges(lin, slots, mask, *edges);
      }
      std::uint8_t cardinal =
          static_cast<std::uint8_t>(mask & ~kLocalBit);
      while (cardinal != 0) {
        const unsigned name = std::countr_zero(cardinal);
        cardinal &= static_cast<std::uint8_t>(cardinal - 1);
        const PortId opid = slots[name * 2 + kOut];
        const PortId tgt = link_to_[opid];
        if (row != nullptr) {
          set_bit(row, opid);
        }
        if (edges != nullptr && (emitted_[opid] & kLinkEmitted) == 0) {
          emitted_[opid] |= kLinkEmitted;
          edges->emplace_back(opid, tgt);
        }
        if (stamp_[tgt] != epoch_) {
          stamp_[tgt] = epoch_;
          frontier_.push_back(tgt);
        }
      }
      if ((mask & kLocalBit) != 0 && row != nullptr) {
        set_bit(row, slots[static_cast<std::size_t>(PortName::kLocal) * 2 +
                           kOut]);
      }
    }
  }

  // Pass 2: the marked in-ports take the same out-ports as their node's
  // Local IN port (the node-uniformity contract).
  const std::size_t width = static_cast<std::size_t>(mesh_->width());
  for (const PortId pid : frontier_) {
    if (row != nullptr) {
      set_bit(row, pid);
    }
    if (edges != nullptr) {
      const Port& p = mesh_->port(pid);
      const std::size_t n = static_cast<std::size_t>(p.y) * width +
                            static_cast<std::size_t>(p.x);
      emit_in_edges(pid, slot_ids_.data() + n * kPortSlotsPerNode, mask_[n],
                    *edges);
    }
  }
}

void RouteSweeper::sweep_ports(const Port& dest, std::vector<Edge>* edges,
                               std::uint64_t* row) {
  if (cache_ == nullptr) {
    cache_ = std::make_unique<EdgeDedupCache>(port_count_);
  }
  ++epoch_;
  frontier_.clear();
  // Messages enter the network at Local IN ports; every port a route can
  // visit from there (under this destination) is reachable-consistent.
  constexpr auto kIn = static_cast<std::size_t>(Direction::kIn);
  const std::size_t local_in_slot =
      static_cast<std::size_t>(PortName::kLocal) * 2 + kIn;
  for (std::size_t n = 0; n < node_count_; ++n) {
    const PortId lin = slot_ids_[n * kPortSlotsPerNode + local_in_slot];
    stamp_[lin] = epoch_;
    frontier_.push_back(lin);
  }
  for (std::size_t head = 0; head < frontier_.size(); ++head) {
    const PortId pid = frontier_[head];
    hops_.clear();
    routing_->append_next_hops(mesh_->port(pid), dest, hops_);
    for (const Port& hop : hops_) {
      // A routing function may only produce existing ports for reachable
      // inputs; a violation is a (C-1)-detectable bug the sweep neither
      // records nor propagates through.
      const std::int32_t qid = mesh_->try_id(hop);
      if (qid < 0) {
        continue;
      }
      const PortId q = static_cast<PortId>(qid);
      if (edges != nullptr && cache_->fresh(pid, q)) {
        edges->emplace_back(pid, q);
      }
      if (stamp_[q] != epoch_) {
        stamp_[q] = epoch_;
        frontier_.push_back(q);
      }
    }
  }
  if (row != nullptr) {
    for (const PortId pid : frontier_) {
      set_bit(row, pid);
    }
  }
}

}  // namespace genoc
