#include "routing/sweep.hpp"

#include <bit>

#include "util/require.hpp"

namespace genoc {

namespace {

inline void set_bit(std::uint64_t* row, PortId pid) {
  row[pid >> 6] |= std::uint64_t{1} << (pid & 63);
}

}  // namespace

RouteSweeper::RouteSweeper(const RoutingFunction& routing)
    : routing_(&routing),
      topo_(&routing.topology()),
      port_count_(routing.topology().port_count()),
      node_count_(routing.topology().node_count()),
      // Node mode needs the whole per-node choice in one mask: one bit per
      // port name. Topology caps name tables at 64, so this always holds
      // today; the guard keeps a wider future family from corrupting masks.
      node_mode_(routing.node_uniform() && topo_->name_count() <= 64) {
  stamp_.assign(port_count_, 0);
  emitted_.assign(port_count_, 0);
  mask_.assign(node_count_, 0);
}

void RouteSweeper::sweep(std::size_t dest_index, std::vector<Edge>* edges,
                         std::uint64_t* row) {
  GENOC_REQUIRE(dest_index < topo_->destination_count(),
                "destination index out of range");
  if (node_mode_) {
    sweep_nodes(dest_index, edges, row);
  } else {
    sweep_ports(dest_index, edges, row);
  }
}

void RouteSweeper::emit_in_edges(PortId pid, const PortId* slots,
                                 std::uint64_t mask,
                                 std::vector<Edge>& edges) {
  std::uint64_t fresh = mask & ~emitted_[pid];
  if (fresh == 0) {
    return;
  }
  emitted_[pid] |= fresh;
  do {
    const unsigned name = static_cast<unsigned>(std::countr_zero(fresh));
    edges.emplace_back(
        pid, slots[name * 2 + static_cast<std::size_t>(Direction::kOut)]);
    fresh &= fresh - 1;
  } while (fresh != 0);
}

void RouteSweeper::sweep_nodes(std::size_t dest_index,
                               std::vector<Edge>* edges, std::uint64_t* row) {
  ++epoch_;
  frontier_.clear();
  const std::uint64_t terminal = topo_->terminal_name_mask();
  const std::size_t spn = topo_->slots_per_node();
  constexpr auto kOut = static_cast<std::size_t>(Direction::kOut);
  constexpr auto kIn = static_cast<std::size_t>(Direction::kIn);

  // Pass 1: one mask per node decides the out-ports of every in-port of
  // that node; selected non-terminal out-ports mark the in-port their link
  // drives (the route tree's hops). Terminal IN ports are always visited
  // (messages inject everywhere), so their edges emit right here. The masks
  // come batched — fill_node_masks hoists the per-destination lookups out
  // of the node loop.
  routing_->fill_node_masks(dest_index, mask_.data());
  const PortId* slots = topo_->node_slots(0);
  for (std::size_t node = 0; node < node_count_; ++node, slots += spn) {
    // Non-existent out-ports drop out of the mask, mirroring the generic
    // construction's existence filter.
    const std::uint64_t mask = mask_[node] & topo_->out_exists_mask(node);
    mask_[node] = mask;
    std::uint64_t term_in = terminal;
    while (term_in != 0) {
      const unsigned name = static_cast<unsigned>(std::countr_zero(term_in));
      term_in &= term_in - 1;
      const PortId tin = slots[name * 2 + kIn];
      if (tin == kInvalidPort) {
        continue;
      }
      if (row != nullptr) {
        set_bit(row, tin);
      }
      if (edges != nullptr) {
        emit_in_edges(tin, slots, mask, *edges);
      }
    }
    std::uint64_t cardinal = mask & ~terminal;
    while (cardinal != 0) {
      const unsigned name = static_cast<unsigned>(std::countr_zero(cardinal));
      cardinal &= cardinal - 1;
      const PortId opid = slots[name * 2 + kOut];
      const PortId tgt = topo_->link_target(opid);
      if (row != nullptr) {
        set_bit(row, opid);
      }
      if (edges != nullptr && (emitted_[opid] & kLinkEmitted) == 0) {
        emitted_[opid] |= kLinkEmitted;
        edges->emplace_back(opid, tgt);
      }
      if (stamp_[tgt] != epoch_) {
        stamp_[tgt] = epoch_;
        frontier_.push_back(tgt);
      }
    }
    std::uint64_t deliver = mask & terminal;
    while (deliver != 0 && row != nullptr) {
      const unsigned name = static_cast<unsigned>(std::countr_zero(deliver));
      deliver &= deliver - 1;
      set_bit(row, slots[name * 2 + kOut]);
    }
  }

  // Pass 2: the marked in-ports take the same out-ports as their node's
  // terminal IN ports (the node-uniformity contract).
  for (const PortId pid : frontier_) {
    if (row != nullptr) {
      set_bit(row, pid);
    }
    if (edges != nullptr) {
      const std::size_t n = topo_->node_of(pid);
      emit_in_edges(pid, topo_->node_slots(n), mask_[n], *edges);
    }
  }
}

void RouteSweeper::sweep_ports(std::size_t dest_index,
                               std::vector<Edge>* edges, std::uint64_t* row) {
  if (cache_ == nullptr) {
    cache_ = std::make_unique<EdgeDedupCache>(port_count_);
  }
  ++epoch_;
  frontier_.clear();
  // Messages enter the network at terminal IN ports; every port a route can
  // visit from there (under this destination) is reachable-consistent.
  for (const PortId src : topo_->source_ids()) {
    stamp_[src] = epoch_;
    frontier_.push_back(src);
  }
  for (std::size_t head = 0; head < frontier_.size(); ++head) {
    const PortId pid = frontier_[head];
    hop_ids_.clear();
    routing_->next_hop_ids_into(pid, dest_index, hop_ids_, hops_);
    for (const PortId q : hop_ids_) {
      if (edges != nullptr && cache_->fresh(pid, q)) {
        edges->emplace_back(pid, q);
      }
      if (stamp_[q] != epoch_) {
        stamp_[q] = epoch_;
        frontier_.push_back(q);
      }
    }
  }
  if (row != nullptr) {
    for (const PortId pid : frontier_) {
      set_bit(row, pid);
    }
  }
}

}  // namespace genoc
