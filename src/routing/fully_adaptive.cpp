#include "routing/fully_adaptive.hpp"

namespace genoc {

std::vector<Port> FullyAdaptiveRouting::out_choices(const Port& current,
                                                    const Port& dest) const {
  std::vector<Port> choices;
  if (dest.x > current.x) {
    choices.push_back(trans(current, PortName::kEast, Direction::kOut));
  }
  if (dest.x < current.x) {
    choices.push_back(trans(current, PortName::kWest, Direction::kOut));
  }
  if (dest.y < current.y) {
    choices.push_back(trans(current, PortName::kNorth, Direction::kOut));
  }
  if (dest.y > current.y) {
    choices.push_back(trans(current, PortName::kSouth, Direction::kOut));
  }
  return choices;
}

}  // namespace genoc
