#include "routing/fully_adaptive.hpp"

namespace genoc {

void FullyAdaptiveRouting::append_out_choices(const Port& current,
                                              const Port& dest,
                                              std::vector<Port>& out) const {
  if (dest.x > current.x) {
    out.push_back(trans(current, PortName::kEast, Direction::kOut));
  }
  if (dest.x < current.x) {
    out.push_back(trans(current, PortName::kWest, Direction::kOut));
  }
  if (dest.y < current.y) {
    out.push_back(trans(current, PortName::kNorth, Direction::kOut));
  }
  if (dest.y > current.y) {
    out.push_back(trans(current, PortName::kSouth, Direction::kOut));
  }
}

std::uint8_t FullyAdaptiveRouting::node_out_mask(std::int32_t x,
                                                 std::int32_t y,
                                                 const Port& dest) const {
  std::uint8_t mask = 0;
  if (dest.x > x) {
    mask |= port_name_bit(PortName::kEast);
  }
  if (dest.x < x) {
    mask |= port_name_bit(PortName::kWest);
  }
  if (dest.y < y) {
    mask |= port_name_bit(PortName::kNorth);
  }
  if (dest.y > y) {
    mask |= port_name_bit(PortName::kSouth);
  }
  return mask != 0 ? mask : port_name_bit(PortName::kLocal);
}

}  // namespace genoc
