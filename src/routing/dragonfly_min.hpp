/// \file dragonfly_min.hpp
/// \brief Minimal hierarchical routing on the Dragonfly.
///
/// The canonical minimal route: local hop to the router owning the global
/// channel toward the destination group, one global hop, local hop to the
/// destination router, eject (at most l-g-l, <= 4 hops). Deterministic and
/// node-uniform — but NOT deadlock-free without virtual channels: the
/// local->global->local dependency chains close cycles through the groups,
/// so Theorem 1 yields a cycle witness. That witness is this library's
/// flagship negative fixture (registry preset dragonfly9-min) and the
/// motivation for the ROADMAP's VC/dateline follow-up.
#pragma once

#include <string>

#include "routing/routing.hpp"
#include "topology/dragonfly.hpp"

namespace genoc {

class DragonflyMinRouting final : public RoutingFunction {
 public:
  explicit DragonflyMinRouting(const DragonflyTopology& topology)
      : RoutingFunction(topology), fly_(&topology) {}

  std::string name() const override { return "Dragonfly-minimal"; }
  bool is_deterministic() const override { return true; }
  bool id_native() const override { return true; }
  bool node_uniform() const override { return true; }

  std::uint64_t out_mask_id(std::size_t node,
                            std::size_t dest_index) const override;
  void append_next_hop_ids(PortId current, std::size_t dest_index,
                           std::vector<PortId>& out) const override;

 private:
  /// The single out-port name chosen at \p node toward destination port
  /// \p dest (eject / intra-group local / global / local-to-owner).
  std::size_t route_name(std::size_t node, PortId dest) const;

  const DragonflyTopology* fly_;
};

}  // namespace genoc
