/// \file odd_even.hpp
/// \brief Odd-Even turn-model routing (Chiu), minimal variant.
///
/// Unlike West-First/North-Last, Odd-Even prohibits no direction globally;
/// instead turn legality depends on column parity: an East->North/East->South
/// turn may only be taken in an odd column (or when one column away from the
/// destination), and a North->West/South->West turn only in an even column.
/// This distributes adaptivity more evenly across the mesh while remaining
/// deadlock-free.
#pragma once

#include "routing/adaptive.hpp"

namespace genoc {

class OddEvenRouting final : public AdaptiveRouting {
 public:
  explicit OddEvenRouting(const Mesh2D& mesh) : AdaptiveRouting(mesh) {}

  std::string name() const override { return "Odd-Even"; }

  /// NOT node-uniform: turn legality reads the in-port name (the travel
  /// direction), so the fast builder uses the generic port-level sweep.

 protected:
  void append_out_choices(const Port& current, const Port& dest,
                          std::vector<Port>& out) const override;
};

}  // namespace genoc
