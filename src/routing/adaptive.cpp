#include "routing/adaptive.hpp"

namespace genoc {

void AdaptiveRouting::append_next_hops(const Port& current, const Port& dest,
                                       std::vector<Port>& out) const {
  if (current.dir == Direction::kOut) {
    if (current.name != PortName::kLocal) {
      out.push_back(mesh().next_in(current));
    }
    return;
  }
  if (at_destination_node(current, dest)) {
    out.push_back(trans(current, PortName::kLocal, Direction::kOut));
    return;
  }
  append_out_choices(current, dest, out);
}

}  // namespace genoc
