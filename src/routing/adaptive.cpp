#include "routing/adaptive.hpp"

namespace genoc {

std::vector<Port> AdaptiveRouting::next_hops(const Port& current,
                                             const Port& dest) const {
  if (current.dir == Direction::kOut) {
    if (current.name == PortName::kLocal) {
      return {};
    }
    return {mesh().next_in(current)};
  }
  if (at_destination_node(current, dest)) {
    return {trans(current, PortName::kLocal, Direction::kOut)};
  }
  return out_choices(current, dest);
}

}  // namespace genoc
