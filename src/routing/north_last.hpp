/// \file north_last.hpp
/// \brief North-Last turn-model routing (Glass & Ni), minimal variant.
///
/// With the paper's coordinate convention (North decreases y), a message may
/// move North only once no other productive direction remains; after the
/// first northbound hop the column is already correct, so it continues North
/// to the destination. The prohibited turns are the two turns out of North.
#pragma once

#include "routing/adaptive.hpp"

namespace genoc {

class NorthLastRouting final : public AdaptiveRouting {
 public:
  explicit NorthLastRouting(const Mesh2D& mesh) : AdaptiveRouting(mesh) {}

  std::string name() const override { return "North-Last"; }

  /// Choice depends only on the node coordinates.
  bool node_uniform() const override { return true; }
  std::uint8_t node_out_mask(std::int32_t x, std::int32_t y,
                             const Port& dest) const override;

 protected:
  void append_out_choices(const Port& current, const Port& dest,
                          std::vector<Port>& out) const override;
};

}  // namespace genoc
