#include "routing/north_last.hpp"

namespace genoc {

void NorthLastRouting::append_out_choices(const Port& current,
                                          const Port& dest,
                                          std::vector<Port>& out) const {
  const std::size_t before = out.size();
  if (dest.x > current.x) {
    out.push_back(trans(current, PortName::kEast, Direction::kOut));
  }
  if (dest.x < current.x) {
    out.push_back(trans(current, PortName::kWest, Direction::kOut));
  }
  if (dest.y > current.y) {
    out.push_back(trans(current, PortName::kSouth, Direction::kOut));
  }
  if (out.size() != before) {
    return;
  }
  // Only the northbound hop remains (dest.y < current.y, same column): the
  // "last" phase. Minimality guarantees we never need to leave it.
  out.push_back(trans(current, PortName::kNorth, Direction::kOut));
}

std::uint8_t NorthLastRouting::node_out_mask(std::int32_t x, std::int32_t y,
                                             const Port& dest) const {
  std::uint8_t mask = 0;
  if (dest.x > x) {
    mask |= port_name_bit(PortName::kEast);
  }
  if (dest.x < x) {
    mask |= port_name_bit(PortName::kWest);
  }
  if (dest.y > y) {
    mask |= port_name_bit(PortName::kSouth);
  }
  if (mask != 0) {
    return mask;
  }
  return dest.y < y ? port_name_bit(PortName::kNorth)
                    : port_name_bit(PortName::kLocal);
}

}  // namespace genoc
