#include "routing/north_last.hpp"

namespace genoc {

std::vector<Port> NorthLastRouting::out_choices(const Port& current,
                                                const Port& dest) const {
  std::vector<Port> choices;
  if (dest.x > current.x) {
    choices.push_back(trans(current, PortName::kEast, Direction::kOut));
  }
  if (dest.x < current.x) {
    choices.push_back(trans(current, PortName::kWest, Direction::kOut));
  }
  if (dest.y > current.y) {
    choices.push_back(trans(current, PortName::kSouth, Direction::kOut));
  }
  if (!choices.empty()) {
    return choices;
  }
  // Only the northbound hop remains (dest.y < current.y, same column): the
  // "last" phase. Minimality guarantees we never need to leave it.
  return {trans(current, PortName::kNorth, Direction::kOut)};
}

}  // namespace genoc
