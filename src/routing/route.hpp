/// \file route.hpp
/// \brief Route computation: the generalization R : Σ -> Σ of the paper.
///
/// The paper generalizes the per-switch routing function to compute, for
/// each travel, the complete route from its current location to its
/// destination; GeNoC2D then pre-computes all routes because XY routing is
/// deterministic ("for any configurations σ and σ', Rxy(σ) = Rxy(σ')").
/// For adaptive functions this module enumerates the route *set* instead,
/// which the witness builder and the adversarial workloads pick from.
#pragma once

#include <cstddef>
#include <vector>

#include "routing/routing.hpp"

namespace genoc {

/// A route is the full port sequence a travel follows, from its current
/// port (usually a Local IN port) to the destination Local OUT port,
/// inclusive on both ends. Consecutive ports are connected by R.
using Route = std::vector<Port>;

/// Computes the unique route of a deterministic routing function from
/// \p from to \p to. Preconditions: routing.is_deterministic(), the
/// endpoints are reachable (routing.reachable(from, to)).
/// Throws ContractViolation if the function fails to terminate within the
/// theoretical bound (a routing bug), so broken instances are caught loudly.
Route compute_route(const RoutingFunction& routing, const Port& from,
                    const Port& to);

/// Enumerates up to \p max_routes distinct routes of a (possibly adaptive)
/// routing function from \p from to \p to, in deterministic DFS order.
/// For deterministic functions the result has exactly one element.
std::vector<Route> enumerate_routes(const RoutingFunction& routing,
                                    const Port& from, const Port& to,
                                    std::size_t max_routes);

/// True iff \p route is non-empty, ends at \p to, starts at \p from, and
/// every step route[i+1] is in R(route[i], to). This is the path-validity
/// predicate of the paper's Correctness Theorem.
bool is_valid_route(const RoutingFunction& routing, const Route& route,
                    const Port& from, const Port& to);

/// Manhattan distance between the nodes of two ports.
std::size_t manhattan_distance(const Port& a, const Port& b);

/// Number of ports on a minimal route between the given Local ports:
/// 2 + 2 * manhattan (each hop crosses an OUT and an IN port, plus the two
/// Local endpoints).
std::size_t minimal_route_length(const Port& src, const Port& dst);

}  // namespace genoc
