/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation for workloads and
///        property tests.
///
/// The library never uses std::rand or non-deterministic seeding: every
/// experiment in EXPERIMENTS.md must be reproducible bit-for-bit from its
/// seed. The generator is xoshiro256**, which is fast, has a 256-bit state,
/// and passes BigCrush; it is more than adequate for traffic generation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace genoc {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64 so that any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed. Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// rejection method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of true.
  bool chance(double p);

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace genoc
