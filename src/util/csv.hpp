/// \file csv.hpp
/// \brief Minimal CSV writer for experiment outputs (one file per
///        table/figure series, consumed by external plotting if desired).
#pragma once

#include <string>
#include <vector>

namespace genoc {

/// Accumulates rows and renders RFC-4180-style CSV (quoting only when
/// needed). Used by the bench harness to persist series data.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders the full document, header first.
  std::string render() const;

  /// Writes the document to \p path; throws std::runtime_error on I/O error.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace genoc
