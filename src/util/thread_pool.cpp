#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace genoc {

namespace {

/// Shared state of one parallel_for: chunks are claimed via an atomic
/// cursor; the loop completes when every chunk has *executed* (claimed-and-
/// finished), which the caller alone can guarantee — helpers are pure
/// opportunism and may never be scheduled at all.
struct ForLoop {
  std::size_t count = 0;
  std::size_t grain = 1;
  std::size_t chunk_total = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> done_chunks{0};
  std::mutex mutex;
  std::condition_variable all_done;
  std::exception_ptr first_error;

  /// Claims and runs chunks until none are left.
  void drain() {
    while (true) {
      const std::size_t chunk =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunk_total) {
        return;
      }
      const std::size_t begin = chunk * grain;
      const std::size_t end = std::min(count, begin + grain);
      try {
        (*body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          chunk_total) {
        std::lock_guard<std::mutex> lock(mutex);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  for (std::size_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    tasks_.push(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  grain = std::max<std::size_t>(1, grain);
  auto loop = std::make_shared<ForLoop>();
  loop->count = count;
  loop->grain = grain;
  loop->chunk_total = (count + grain - 1) / grain;
  loop->body = &body;

  const std::size_t helpers =
      std::min(workers_.size(), loop->chunk_total - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    enqueue([loop] { loop->drain(); });
  }
  loop->drain();
  {
    std::unique_lock<std::mutex> lock(loop->mutex);
    loop->all_done.wait(lock, [&loop] {
      return loop->done_chunks.load(std::memory_order_acquire) ==
             loop->chunk_total;
    });
  }
  if (loop->first_error) {
    std::rethrow_exception(loop->first_error);
  }
}

}  // namespace genoc
