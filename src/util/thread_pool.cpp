#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace genoc {

namespace {

std::uint64_t busy_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shared state of one parallel_for: chunks are claimed via an atomic
/// cursor; the loop completes when every chunk has *executed* (claimed-and-
/// finished), which the caller alone can guarantee — helpers are pure
/// opportunism and may never be scheduled at all.
struct ForLoop {
  std::size_t count = 0;
  std::size_t grain = 1;
  std::size_t chunk_total = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> done_chunks{0};
  std::mutex mutex;
  std::condition_variable all_done;
  std::exception_ptr first_error;
  obs::Counter* chunks_run_metric = nullptr;

  /// Claims and runs chunks until none are left.
  void drain() {
    while (true) {
      const std::size_t chunk =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunk_total) {
        return;
      }
      const std::size_t begin = chunk * grain;
      const std::size_t end = std::min(count, begin + grain);
      // Chunk events flush before done_chunks releases the caller, so the
      // trace is complete the moment parallel_for returns.
      obs::TraceSpan span("pool_chunk");
      if (span.active()) {
        span.set_detail(std::to_string(begin) + ".." + std::to_string(end));
      }
      chunks_run_metric->increment();
      try {
        (*body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          chunk_total) {
        std::lock_guard<std::mutex> lock(mutex);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  tasks_run_metric_ = &metrics.counter("threadpool.tasks_run");
  parallel_for_metric_ = &metrics.counter("threadpool.parallel_for.calls");
  chunks_run_metric_ = &metrics.counter("threadpool.chunks_run");
  queue_depth_highwater_ = &metrics.gauge("threadpool.queue_depth_highwater");
  grain_histogram_ = &metrics.histogram("threadpool.parallel_for.grain");
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  for (std::size_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Per-worker busy time; the caller thread (index 0) is accounted by the
  // pool_chunk spans instead, since it never runs worker_loop.
  obs::Counter& busy_ns = obs::MetricsRegistry::global().counter(
      "threadpool.worker" + std::to_string(worker_index) + ".busy_ns");
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const std::uint64_t begin_ns = busy_clock_ns();
    task();
    busy_ns.add(busy_clock_ns() - begin_ns);
    tasks_run_metric_->increment();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    tasks_.push(std::move(task));
    queue_depth_highwater_->record_max(
        static_cast<std::int64_t>(tasks_.size()));
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  grain = std::max<std::size_t>(1, grain);
  parallel_for_metric_->increment();
  grain_histogram_->observe(grain);
  auto loop = std::make_shared<ForLoop>();
  loop->count = count;
  loop->grain = grain;
  loop->chunk_total = (count + grain - 1) / grain;
  loop->body = &body;
  loop->chunks_run_metric = chunks_run_metric_;

  const std::size_t helpers =
      std::min(workers_.size(), loop->chunk_total - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    enqueue([loop] { loop->drain(); });
  }
  loop->drain();
  {
    std::unique_lock<std::mutex> lock(loop->mutex);
    loop->all_done.wait(lock, [&loop] {
      return loop->done_chunks.load(std::memory_order_acquire) ==
             loop->chunk_total;
    });
  }
  if (loop->first_error) {
    std::rethrow_exception(loop->first_error);
  }
}

}  // namespace genoc
