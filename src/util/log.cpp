#include "util/log.hpp"

#include <iostream>
#include <mutex>

namespace genoc {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level || level == LogLevel::kOff) {
    return;
  }
  // Pool workers log concurrently; format the whole line first and hold a
  // mutex across the single stream write so lines never interleave
  // mid-record.
  std::string line;
  line.reserve(message.size() + 16);
  line += "[genoc ";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  static std::mutex emit_mutex;
  std::lock_guard<std::mutex> lock(emit_mutex);
  std::cerr << line;
}

}  // namespace genoc
