#include "util/dot.hpp"

#include <sstream>

#include "util/require.hpp"

namespace genoc {

namespace {

/// Escapes the characters DOT treats specially inside double-quoted strings.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(std::size_t vertex_count,
                   const std::vector<std::pair<std::size_t, std::size_t>>& edges,
                   const std::function<std::string(std::size_t)>& label,
                   const DotOptions& options) {
  GENOC_REQUIRE(static_cast<bool>(label), "a vertex label function is required");
  std::ostringstream os;
  os << "digraph \"" << escape(options.graph_name) << "\" {\n";
  if (options.rankdir_lr) {
    os << "  rankdir=LR;\n";
  }
  os << "  node [shape=" << options.node_shape << "];\n";
  for (std::size_t v = 0; v < vertex_count; ++v) {
    os << "  n" << v << " [label=\"" << escape(label(v)) << "\"];\n";
  }
  for (const auto& [from, to] : edges) {
    GENOC_REQUIRE(from < vertex_count && to < vertex_count,
                  "edge endpoint out of range");
    os << "  n" << from << " -> n" << to << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace genoc
