/// \file log.hpp
/// \brief Tiny leveled logger. Defaults to warnings-and-above so tests and
///        benches stay quiet; examples raise the level for narrative output.
#pragma once

#include <sstream>
#include <string>

namespace genoc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);

/// Current global minimum level.
LogLevel log_level();

/// Emits one line to stderr if \p level passes the global threshold.
void log_line(LogLevel level, const std::string& message);

}  // namespace genoc

#define GENOC_LOG(level, expr)                          \
  do {                                                  \
    if ((level) >= ::genoc::log_level()) {              \
      std::ostringstream genoc_log_os;                  \
      genoc_log_os << expr;                             \
      ::genoc::log_line((level), genoc_log_os.str());   \
    }                                                   \
  } while (false)

#define GENOC_DEBUG(expr) GENOC_LOG(::genoc::LogLevel::kDebug, expr)
#define GENOC_INFO(expr) GENOC_LOG(::genoc::LogLevel::kInfo, expr)
#define GENOC_WARN(expr) GENOC_LOG(::genoc::LogLevel::kWarn, expr)
#define GENOC_ERROR(expr) GENOC_LOG(::genoc::LogLevel::kError, expr)
