/// \file thread_pool.hpp
/// \brief ThreadPool: the shared worker pool behind every parallel stage
///        (dependency-graph sharding, instance sweeps, parallel SCC).
///
/// Extracted from instance/BatchRunner so that lower layers (graph/) can
/// accept a pool without depending on the instance subsystem. parallel_for
/// is work-sharing: the calling thread claims chunks alongside the workers
/// and completion never depends on a worker picking up the task, so nested
/// calls (an instance task sharding its own graph build) cannot deadlock
/// the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace genoc {

namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

class ThreadPool {
 public:
  /// Spawns \p threads - 1 workers (the caller is the remaining thread);
  /// 0 means hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: workers + the calling thread.
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(begin, end) over consecutive chunks of ~\p grain indices
  /// covering [0, count); blocks until every chunk has run. The caller
  /// participates, so this is safe to call from inside another
  /// parallel_for body. The first exception thrown by a chunk is
  /// rethrown here (remaining chunks still run).
  void parallel_for(
      std::size_t count, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// The grain every destination-sharded stage uses: ~\p chunks_per_thread
  /// chunks per thread (load balance against uneven per-item cost) but
  /// never below 1. Centralized so the dep-graph build, the escape sweep
  /// and the trim rounds shard consistently.
  std::size_t recommended_grain(std::size_t count,
                                std::size_t chunks_per_thread = 8) const {
    const std::size_t chunks = thread_count() * chunks_per_thread;
    return count < chunks ? 1 : count / chunks;
  }

 private:
  void worker_loop(std::size_t worker_index);
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;

  // Utilization metrics in the process-wide MetricsRegistry, resolved once
  // at construction (the registry owns them; references never dangle).
  // Scheduling metrics (threadpool.*) legitimately vary with thread count —
  // only the analysis-layer counters are thread-count-invariant.
  obs::Counter* tasks_run_metric_ = nullptr;
  obs::Counter* parallel_for_metric_ = nullptr;
  obs::Counter* chunks_run_metric_ = nullptr;
  obs::Gauge* queue_depth_highwater_ = nullptr;
  obs::Histogram* grain_histogram_ = nullptr;
};

}  // namespace genoc
