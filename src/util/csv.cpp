#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/require.hpp"

namespace genoc {

namespace {

std::string quote_if_needed(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GENOC_REQUIRE(!headers_.empty(), "CSV needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  GENOC_REQUIRE(cells.size() == headers_.size(),
                "CSV row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) {
        os << ',';
      }
      os << quote_if_needed(row[i]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open CSV output file: " + path);
  }
  out << render();
  if (!out) {
    throw std::runtime_error("error while writing CSV file: " + path);
  }
}

}  // namespace genoc
