#include "util/rng.hpp"

#include "util/require.hpp"

namespace genoc {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  GENOC_REQUIRE(bound > 0, "Rng::below requires a positive bound");
  // Lemire's multiply-then-reject technique.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  GENOC_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  // 53 high-quality bits into the mantissa.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) {
    idx[i] = i;
  }
  shuffle(idx);
  return idx;
}

}  // namespace genoc
