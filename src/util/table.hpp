/// \file table.hpp
/// \brief ASCII table rendering used by benchmarks and examples to print
///        paper-style tables (notably the Table I reproduction).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace genoc {

/// A simple right-aligned-numbers, left-aligned-text ASCII table builder.
///
/// Usage:
/// \code
///   Table t({"File", "Lines", "Thms"});
///   t.add_row({"Rxy", "1173", "97"});
///   std::cout << t.render();
/// \endcode
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void add_separator();

  /// Number of data rows (separators excluded).
  std::size_t row_count() const;

  /// Renders the table with box-drawing borders.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  // A separator is encoded as an empty row vector.
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string format_double(double value, int precision);

/// Formats counts with thousands separators, e.g. 13261 -> "13,261".
std::string format_count(std::uint64_t value);

}  // namespace genoc
