#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "util/require.hpp"

namespace genoc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GENOC_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  GENOC_REQUIRE(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::size_t Table::row_count() const {
  std::size_t n = 0;
  for (const auto& row : rows_) {
    if (!row.empty()) {
      ++n;
    }
  }
  return n;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&](char fill) {
    std::string s = "+";
    for (std::size_t w : widths) {
      s += std::string(w + 2, fill);
      s += '+';
    }
    s += '\n';
    return s;
  };

  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      // Numbers (and numeric-looking cells) read better right-aligned.
      const bool numeric =
          !cell.empty() &&
          cell.find_first_not_of("0123456789.,+-eE%x") == std::string::npos;
      s += ' ';
      if (numeric) {
        s += std::string(widths[c] - cell.size(), ' ') + cell;
      } else {
        s += cell + std::string(widths[c] - cell.size(), ' ');
      }
      s += " |";
    }
    s += '\n';
    return s;
  };

  std::string out = rule('-');
  out += line(headers_);
  out += rule('=');
  for (const auto& row : rows_) {
    out += row.empty() ? rule('-') : line(row);
  }
  out += rule('-');
  return out;
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out += ',';
    }
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace genoc
