/// \file require.hpp
/// \brief Contract-checking macros used across the GeNoC-CPP library.
///
/// Following the C++ Core Guidelines (I.5/I.7: state and check preconditions),
/// public API entry points check their preconditions with GENOC_REQUIRE and
/// internal invariants with GENOC_ASSERT. Violations throw
/// genoc::ContractViolation carrying the failed expression and location, so
/// that misuse is loud and testable rather than undefined behaviour.
#pragma once

#include <stdexcept>
#include <string>

namespace genoc {

/// Exception thrown when a documented precondition or internal invariant of
/// the library is violated. Tests assert on this type to verify that
/// validation logic actually fires.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& msg);
}  // namespace detail

}  // namespace genoc

/// Checks a precondition of a public API function. Always on (not tied to
/// NDEBUG): the checkers in this library are correctness tools and must not
/// silently accept malformed inputs in release builds.
#define GENOC_REQUIRE(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::genoc::detail::contract_failure("precondition", #expr, __FILE__, \
                                        __LINE__, (msg));                \
    }                                                                    \
  } while (false)

/// Checks an internal invariant. Also always on; the cost is negligible
/// compared to the graph and simulation work this library performs.
#define GENOC_ASSERT(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::genoc::detail::contract_failure("invariant", #expr, __FILE__, \
                                        __LINE__, (msg));              \
    }                                                                  \
  } while (false)
