/// \file dot.hpp
/// \brief Graphviz DOT export for dependency graphs (used to reproduce the
///        paper's Fig. 3, the port dependency graph of a 2x2 mesh).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace genoc {

/// Options controlling DOT rendering.
struct DotOptions {
  std::string graph_name = "G";
  bool rankdir_lr = false;          ///< Layout left-to-right instead of top-down.
  std::string node_shape = "box";   ///< Graphviz shape for every node.
};

/// Serializes a directed graph to Graphviz DOT.
///
/// \param vertex_count number of vertices, labelled via \p label.
/// \param edges        directed edge list (from, to); indices < vertex_count.
/// \param label        maps a vertex index to its display label.
/// \param options      cosmetic options.
std::string to_dot(std::size_t vertex_count,
                   const std::vector<std::pair<std::size_t, std::size_t>>& edges,
                   const std::function<std::string(std::size_t)>& label,
                   const DotOptions& options = {});

}  // namespace genoc
