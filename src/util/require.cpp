#include "util/require.hpp"

#include <sstream>

namespace genoc::detail {

[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "genoc " << kind << " violated: (" << expr << ") at " << file << ':'
     << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw ContractViolation(os.str());
}

}  // namespace genoc::detail
