/// \file stopwatch.hpp
/// \brief Wall-clock stopwatch used by the obligation harness to report the
///        CPU column of the Table I reproduction.
#pragma once

#include <chrono>

namespace genoc {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch();

  /// Restarts the stopwatch.
  void reset();

  /// Elapsed time since construction/reset in milliseconds.
  double elapsed_ms() const;

  /// Elapsed time in seconds.
  double elapsed_s() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace genoc
