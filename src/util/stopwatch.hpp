/// \file stopwatch.hpp
/// \brief Wall-clock and CPU-time stopwatches. `Stopwatch` measures
///        steady_clock wall time; `CpuStopwatch` measures true CPU time
///        consumed by the whole process (all threads, via getrusage), so
///        parallel stages report both how long they took and how much work
///        they burned.
#pragma once

#include <chrono>
#include <cstdint>

namespace genoc {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch();

  /// Restarts the stopwatch.
  void reset();

  /// Elapsed time since construction/reset in milliseconds.
  double elapsed_ms() const;

  /// Elapsed time in seconds.
  double elapsed_s() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// CPU time consumed so far by the whole process — every thread, user +
/// system — in milliseconds. Uses getrusage(RUSAGE_SELF) where available,
/// std::clock() otherwise.
double process_cpu_ms();

/// CPU time consumed so far by the calling thread, in milliseconds. Uses
/// CLOCK_THREAD_CPUTIME_ID where available; falls back to process_cpu_ms().
double thread_cpu_ms();

/// Peak resident set size of the process so far, in KiB (getrusage
/// ru_maxrss; Linux reports it in KiB directly). 0 where unavailable.
/// A process-lifetime high-water mark, not a per-stage figure — reports
/// carry it so memory regressions show up in --baseline trends next to
/// wall_ms.
std::int64_t peak_rss_kb();

/// CPU-time stopwatch over the process-wide roll-up: elapsed_ms() is the
/// CPU burned by all threads since construction/reset. Under a shared pool
/// this attributes concurrent siblings' work too — it is a roll-up, not a
/// per-stage exclusive figure — but it is the honest "work burned" number
/// the wall-clock Stopwatch was misreporting as cpu_ms.
class CpuStopwatch {
 public:
  CpuStopwatch();

  void reset();

  double elapsed_ms() const;

 private:
  double start_ms_;
};

}  // namespace genoc
