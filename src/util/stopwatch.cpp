#include "util/stopwatch.hpp"

namespace genoc {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::elapsed_ms() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - start_).count();
}

double Stopwatch::elapsed_s() const { return elapsed_ms() / 1000.0; }

}  // namespace genoc
