#include "util/stopwatch.hpp"

#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <time.h>
#define GENOC_HAVE_RUSAGE 1
#else
#define GENOC_HAVE_RUSAGE 0
#endif

namespace genoc {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::elapsed_ms() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - start_).count();
}

double Stopwatch::elapsed_s() const { return elapsed_ms() / 1000.0; }

double process_cpu_ms() {
#if GENOC_HAVE_RUSAGE
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    const auto to_ms = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) * 1000.0 +
             static_cast<double>(tv.tv_usec) / 1000.0;
    };
    return to_ms(usage.ru_utime) + to_ms(usage.ru_stime);
  }
#endif
  return static_cast<double>(std::clock()) * 1000.0 / CLOCKS_PER_SEC;
}

double thread_cpu_ms() {
#if GENOC_HAVE_RUSAGE && defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1000.0 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  }
#endif
  return process_cpu_ms();
}

std::int64_t peak_rss_kb() {
#if GENOC_HAVE_RUSAGE
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<std::int64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
    return static_cast<std::int64_t>(usage.ru_maxrss);  // KiB on Linux
#endif
  }
#endif
  return 0;
}

CpuStopwatch::CpuStopwatch() : start_ms_(process_cpu_ms()) {}

void CpuStopwatch::reset() { start_ms_ = process_cpu_ms(); }

double CpuStopwatch::elapsed_ms() const {
  return process_cpu_ms() - start_ms_;
}

}  // namespace genoc
