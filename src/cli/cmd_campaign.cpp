/// \file cmd_campaign.cpp
/// \brief `genoc campaign` — the fault-injection campaign engine: enumerate
///        link-failure variants of a base instance, screen each through the
///        cheap analyzer rules (stable diagnostic codes), verify the
///        survivors against one batch-shared artifact store.
///
/// Exit codes: 0 = every verified variant deadlock-free, 1 = some verified
/// variant deadlocks, 2 = usage (bad instance, malformed --faults, a
/// non-grid or pre-faulted base).
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "campaign/campaign.hpp"
#include "cli/campaign_json.hpp"
#include "cli/commands.hpp"
#include "instance/registry.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc campaign [options]\n"
    "  --instance X   base instance: a registered grid preset (see `genoc\n"
    "                 list`) or an ad-hoc spec (\"topology=mesh size=8x8\n"
    "                 routing=xy\"); must not itself declare failed=\n"
    "  --faults P     fault plan (default single):\n"
    "                   single            every single-link failure\n"
    "                   double            every unordered link pair\n"
    "                   random:<k>,<seed> one variant of k seeded links\n"
    "  --threads N    worker threads for the variant shard (default 0 =\n"
    "                 hardware concurrency); the report is byte-identical\n"
    "                 at any value\n"
    "  --json F       write the schema-versioned JSON report to F\n"
    "                 (\"-\" = stdout); timing fields included\n"
    "  --trace F      record a Chrome trace-event span trace of the\n"
    "                 campaign to F\n"
    "\n"
    "Each variant runs the spec_sanity/fault_sanity/connectivity pre-screen\n"
    "first; variants with error-severity findings (net-disconnected,\n"
    "sanity-fault-*) are SCREENED on their codes without spending a verify.\n"
    "Survivors verify through the standard pipeline against one shared\n"
    "artifact store — the base dependency graph is built once and each\n"
    "node-uniform variant's graph is derived from it by delta.\n";

}  // namespace

int cmd_campaign(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string instance = args.get("instance", "");
  const std::string faults = args.get("faults", "single");
  const std::int64_t threads = args.get_int_in("threads", 0, 0, 4096);
  const bool json_given = args.has("json");
  const std::string json_path = args.get("json", "");
  const std::string trace_path = args.get("trace", "");
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }
  if (instance.empty()) {
    std::cerr << "genoc campaign: pass --instance <name|spec>\n\n" << kUsage;
    return 2;
  }

  std::string error;
  const std::optional<InstanceSpec> base =
      InstanceRegistry::global().resolve(instance, &error);
  if (!base) {
    std::cerr << "genoc campaign: " << error << "\n";
    return 2;
  }
  if (!base->is_grid()) {
    std::cerr << "genoc campaign: fault campaigns are grid-only; '"
              << instance << "' is a " << base->topology << " instance\n";
    return 2;
  }
  if (!base->failed_links.empty()) {
    std::cerr << "genoc campaign: base instance already declares failed= — "
                 "faults are enumerated by the campaign\n";
    return 2;
  }

  CampaignOptions options;
  const std::optional<FaultPlan> plan = parse_fault_plan(faults, &error);
  if (!plan) {
    std::cerr << "genoc campaign: " << error << "\n\n" << kUsage;
    return 2;
  }
  options.plan = *plan;
  options.threads = static_cast<std::size_t>(threads);
  if (options.plan.kind == FaultPlan::Kind::kRandom) {
    const FaultModel model(*base);
    if (options.plan.count > model.links().size()) {
      std::cerr << "genoc campaign: random plan draws " << options.plan.count
                << " links but '" << instance << "' has only "
                << model.links().size() << "\n";
      return 2;
    }
  }

  // Open the trace file BEFORE the (possibly minutes-long) campaign: an
  // unwritable path must fail fast, not after the sweep.
  std::optional<std::ofstream> trace_out;
  if (!trace_path.empty()) {
    trace_out.emplace(trace_path);
    if (!*trace_out) {
      std::cerr << "genoc campaign: cannot write --trace file '" << trace_path
                << "'\n";
      return 2;
    }
    obs::TraceRecorder::global().start();
  }

  const CampaignReport report = run_campaign(*base, options);

  if (trace_out.has_value()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    recorder.stop();
    recorder.write_json(*trace_out);
    trace_out->flush();
    if (!*trace_out) {
      std::cerr << "genoc campaign: error writing --trace file '"
                << trace_path << "'\n";
      return 2;
    }
  }

  if (json_given) {
    const std::string rendered = campaign_report_json(report, true);
    if (json_path.empty() || json_path == "-") {
      std::cout << rendered;
    } else {
      std::ofstream out(json_path);
      out << rendered;
      out.flush();
      if (!out) {
        std::cerr << "genoc campaign: cannot write --json file '" << json_path
                  << "'\n";
        return 2;
      }
    }
    return report.any_deadlock() ? 1 : 0;
  }

  std::cout << "Fault campaign over " << report.instance << " (plan "
            << report.plan << "): " << report.links << " links, "
            << report.variants_total << " variants on " << report.threads
            << " threads\n\n";
  Table table({"Outcome", "Variants"});
  table.add_row({"screened", std::to_string(report.screened)});
  table.add_row({"verified deadlock-free",
                 std::to_string(report.deadlock_free)});
  table.add_row({"verified DEADLOCK", std::to_string(report.deadlocked)});
  std::cout << table.render() << "\n";
  if (!report.screen_code_counts.empty()) {
    std::cout << "Screen codes:\n";
    for (const auto& [code, count] : report.screen_code_counts) {
      std::cout << "  " << code << ": " << count << "\n";
    }
  }
  for (const VariantOutcome& out : report.variants) {
    if (!out.screened && !out.deadlock_free) {
      std::cout << "  DEADLOCK failed=" << out.faults << " (" << out.method
                << ")\n";
    }
  }
  std::cout << "Artifact cache: base context built "
            << report.cache.dep_graph.misses << "x, reused "
            << report.cache.dep_graph.hits << "x; "
            << report.wall_ms / 1000.0 << " s wall\n";
  std::cout << (report.any_deadlock()
                    ? "DEADLOCK — " + std::to_string(report.deadlocked) +
                          " verified variants deadlock.\n"
                    : "Every verified variant is deadlock-free (" +
                          std::to_string(report.screened) + " screened).\n");
  return report.any_deadlock() ? 1 : 0;
}

}  // namespace genoc::cli
