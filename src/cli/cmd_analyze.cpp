/// \file cmd_analyze.cpp
/// \brief `genoc analyze` — the static model analyzer: rule-based lints
///        over an instance's model constituents (routing totality, the
///        node-uniformity claim, turn-model conformance, dead ports,
///        escape coverage, spec sanity), with stable diagnostic codes.
///
/// The fault-campaign front door: where `genoc verify` DECIDES deadlock
/// freedom, `analyze` rejects broken model variants for milliseconds
/// before a verify is spent on them. Exit codes: 0 = every analyzed
/// instance clean, 1 = findings, 2 = usage (unknown/duplicate/empty
/// --rules selection, bad instance), mirroring `verify --stages`.
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "cli/analyze_json.hpp"
#include "cli/commands.hpp"
#include "cli/json_writer.hpp"
#include "cli/verify_json.hpp"
#include "instance/registry.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"
#include "verify/artifacts.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc analyze [options]\n"
    "  --instance X   analyze a registered instance (see `genoc list`) or an\n"
    "                 ad-hoc spec: \"topology=torus size=16x16 routing=odd_even\"\n"
    "  --all          analyze every registered instance (heavy presets\n"
    "                 included: rules are budget-bounded)\n"
    "  --rules A,B    run only the named analysis rules, in order (see\n"
    "                 `genoc list --rules`); unknown, duplicate or empty\n"
    "                 selections exit 2\n"
    "  --json         emit the schema-versioned JSON report on stdout\n"
    "\n"
    "Rules lint the model constituents statically — no simulation, no SCC\n"
    "decision — and emit typed diagnostics with stable codes; exit 1 when\n"
    "any analyzed instance has a warning/error finding.\n";

std::string json_string_array(const std::vector<std::string>& strings) {
  std::vector<std::string> elements;
  elements.reserve(strings.size());
  for (const std::string& s : strings) {
    elements.push_back("\"" + json_escape(s) + "\"");
  }
  return json_array(elements);
}

int report_analyses(const std::vector<AnalyzeReport>& reports,
                    const Analyzer& analyzer, bool all, bool as_json) {
  bool all_clean = true;
  std::uint64_t findings_total = 0;
  for (const AnalyzeReport& report : reports) {
    all_clean = all_clean && report.clean();
    findings_total += report.findings();
  }

  if (as_json) {
    std::vector<std::string> rows;
    rows.reserve(reports.size());
    for (const AnalyzeReport& report : reports) {
      rows.push_back(analyze_report_json(report));
    }
    JsonObject report;
    report.add("command", "analyze")
        .add("schema_version",
             static_cast<std::int64_t>(AnalyzeReport::kSchemaVersion))
        .add("mode", all ? "all" : "instance")
        .add_raw("rules", json_string_array(analyzer.rule_names()))
        .add("instances_total", static_cast<std::uint64_t>(reports.size()))
        .add("all_clean", all_clean)
        .add("findings_total", findings_total)
        .add_raw("metrics",
                 metrics_json(obs::MetricsRegistry::global().snapshot()))
        .add_raw("instances", json_array(rows));
    std::cout << report.to_string();
    return all_clean ? 0 : 1;
  }

  Table table({"Instance", "Topology", "Routing", "Ports", "Checks",
               "Findings", "Wall ms", "Status"});
  for (const AnalyzeReport& report : reports) {
    table.add_row({report.instance, report.topology, report.routing,
                   format_count(report.ports), format_count(report.checks),
                   std::to_string(report.findings()),
                   format_double(report.wall_ms, 2),
                   report.clean() ? "CLEAN" : "FINDINGS"});
  }
  std::cout << "Static model analysis (rules: ";
  const std::vector<std::string> names = analyzer.rule_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::cout << (i == 0 ? "" : ",") << names[i];
  }
  std::cout << "):\n\n" << table.render() << "\n";
  for (const AnalyzeReport& report : reports) {
    for (const Diagnostic& diagnostic : report.diagnostics) {
      if (diagnostic.severity == Severity::kInfo) {
        continue;
      }
      std::cout << "  " << report.instance << ": ["
                << severity_name(diagnostic.severity) << "/" << diagnostic.code
                << "] " << diagnostic.message << "\n";
    }
  }
  std::cout << (all_clean
                    ? "Every analyzed instance is clean.\n"
                    : "FINDINGS — " + std::to_string(findings_total) +
                          " warning/error diagnostics; see the rows above.\n");
  return all_clean ? 0 : 1;
}

}  // namespace

int cmd_analyze(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string instance = args.get("instance", "");
  const bool all = args.has("all");
  const bool rules_given = args.has("rules");
  const std::string rules = args.get("rules", "");
  const bool as_json = args.has("json");
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }
  if (!all && instance.empty()) {
    std::cerr << "genoc analyze: pass --instance <name|spec> or --all\n\n"
              << kUsage;
    return 2;
  }

  const InstanceRegistry& registry = InstanceRegistry::global();
  std::vector<InstanceSpec> specs;
  if (all) {
    // The full registry, heavy presets included: analyzer rules are
    // destination-sampled, so even mesh256-xy stays interactive.
    specs = registry.presets();
  } else {
    std::string error;
    const std::optional<InstanceSpec> spec = registry.resolve(instance, &error);
    if (!spec) {
      std::cerr << "genoc analyze: " << error << "\n";
      return 2;
    }
    specs.push_back(*spec);
  }

  const Analyzer* analyzer = &Analyzer::standard();
  std::optional<Analyzer> custom;
  // Keyed off the flag's presence: `--rules=` must hit the empty-selection
  // error, not silently run every rule (the verify --stages contract).
  if (rules_given) {
    std::string error;
    custom = Analyzer::from_rule_names(split_selection(rules), &error);
    if (!custom) {
      std::cerr << "genoc analyze: " << error << "\n";
      return 2;
    }
    analyzer = &*custom;
  }

  // The same batch-wide artifact store verify uses: presets differing only
  // in workload/switching share one topology x routing x escape context.
  ArtifactStore store;
  std::vector<AnalyzeReport> reports;
  reports.reserve(specs.size());
  for (const InstanceSpec& spec : specs) {
    reports.push_back(analyzer->run(spec, *store.acquire(spec)));
  }
  return report_analyses(reports, *analyzer, all, as_json);
}

}  // namespace genoc::cli
