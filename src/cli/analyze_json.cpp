#include "cli/analyze_json.hpp"

#include <vector>

#include "cli/json_writer.hpp"
#include "cli/verify_json.hpp"

namespace genoc::cli {

std::string analyze_report_json(const genoc::AnalyzeReport& report) {
  std::vector<std::string> rules;
  rules.reserve(report.rules.size());
  for (const genoc::StageStats& stats : report.rules) {
    rules.push_back(stage_stats_json(stats));
  }
  std::vector<std::string> diagnostics;
  diagnostics.reserve(report.diagnostics.size());
  for (const genoc::Diagnostic& diagnostic : report.diagnostics) {
    diagnostics.push_back(diagnostic_json(diagnostic));
  }
  JsonObject obj;
  obj.add("instance", report.instance)
      .add("spec", report.spec)
      .add("topology", report.topology)
      .add("routing", report.routing)
      .add("nodes", static_cast<std::uint64_t>(report.nodes))
      .add("ports", static_cast<std::uint64_t>(report.ports))
      .add("clean", report.clean())
      .add("findings", static_cast<std::uint64_t>(report.findings()))
      .add("checks", report.checks)
      .add("wall_ms", report.wall_ms)
      .add_raw("rules", json_array(rules))
      .add_raw("diagnostics", json_array(diagnostics));
  return obj.to_string();
}

}  // namespace genoc::cli
