#include "cli/campaign_json.hpp"

#include <vector>

#include "cli/json_writer.hpp"
#include "cli/verify_json.hpp"
#include "obs/metrics.hpp"

namespace genoc::cli {

namespace {

std::string variant_json(const genoc::VariantOutcome& out,
                         bool include_timing) {
  std::vector<std::string> codes;
  codes.reserve(out.screen_codes.size());
  for (const std::string& code : out.screen_codes) {
    codes.push_back("\"" + json_escape(code) + "\"");
  }
  JsonObject obj;
  obj.add("faults", out.faults)
      .add("screened", out.screened)
      .add_raw("codes", json_array(codes))
      .add("deadlock_free", out.deadlock_free)
      .add("method", out.method)
      .add("edges", static_cast<std::uint64_t>(out.edges))
      .add("checks", out.checks);
  if (include_timing) {
    obj.add("wall_ms", out.wall_ms);
  }
  return obj.to_string();
}

}  // namespace

std::string campaign_report_json(const genoc::CampaignReport& report,
                                 bool include_timing) {
  JsonObject codes;
  for (const auto& [code, count] : report.screen_code_counts) {
    codes.add(code, count);
  }
  std::vector<std::string> variants;
  variants.reserve(report.variants.size());
  for (const genoc::VariantOutcome& out : report.variants) {
    variants.push_back(variant_json(out, include_timing));
  }
  JsonObject obj;
  obj.add("command", "campaign")
      .add("schema_version", genoc::CampaignReport::kSchemaVersion)
      .add("instance", report.instance)
      .add("spec", report.spec)
      .add("plan", report.plan)
      .add("links", static_cast<std::uint64_t>(report.links))
      .add("variants_total", static_cast<std::uint64_t>(report.variants_total))
      .add("screened", static_cast<std::uint64_t>(report.screened))
      .add("verified", static_cast<std::uint64_t>(report.verified))
      .add("deadlock_free", static_cast<std::uint64_t>(report.deadlock_free))
      .add("deadlocked", static_cast<std::uint64_t>(report.deadlocked))
      .add("any_deadlock", report.any_deadlock())
      .add_raw("screen_codes", codes.to_string())
      .add_raw("cache", cache_stats_json(report.cache))
      .add_raw("variants", json_array(variants));
  if (include_timing) {
    obj.add("threads", static_cast<std::uint64_t>(report.threads))
        .add("wall_ms", report.wall_ms)
        .add_raw("metrics",
                 metrics_json(genoc::obs::MetricsRegistry::global().snapshot()));
  }
  return obj.to_string();
}

}  // namespace genoc::cli
