/// \file commands.hpp
/// \brief Subcommand entry points of the unified `genoc` driver.
///
/// One binary fronts every scenario the scattered example/bench mains used
/// to own:
///   genoc verify      — discharge the proof obligations (Table I shape),
///                       per --instance or as a --all registry matrix
///   genoc sim         — run GeNoC2D on a traffic pattern with auditing
///   genoc bench       — timed micro-benchmarks, machine-readable JSON out
///   genoc export-dot  — dependency graph as Graphviz DOT (paper Fig. 3)
///   genoc list        — the registered network instances
#pragma once

#include <string>
#include <vector>

#include "cli/args.hpp"

namespace genoc::cli {

int cmd_verify(const Args& args);
int cmd_analyze(const Args& args);
int cmd_campaign(const Args& args);
int cmd_sim(const Args& args);
int cmd_bench(const Args& args);
int cmd_export_dot(const Args& args);
int cmd_list(const Args& args);

/// Prints \p usage plus any parse errors / unknown flags; returns 2 when
/// the invocation was malformed, 0 otherwise. Call after all flag reads.
int finish_args(const Args& args, const char* usage);

/// Splits a comma-separated selection (`--stages A,B`, `--rules A,B`) into
/// its tokens; empty tokens are dropped, so a fully empty value yields the
/// empty list the from_*_names factories reject as "empty selection".
std::vector<std::string> split_selection(const std::string& text);

}  // namespace genoc::cli
