/// \file analyze_json.hpp
/// \brief JSON rendering of the static analyzer's typed output — one
///        per-instance row carrying the per-rule StageStats and the
///        Diagnostic findings.
///
/// Lives in genoc_cli_support (not the driver) so the test suite covers the
/// exact serialization `genoc analyze --json` ships; the schema is
/// versioned by AnalyzeReport::kSchemaVersion, which cmd_analyze stamps at
/// the top level and tools/check_analyze_schema.py validates in CI. The
/// Diagnostic/StageStats sub-objects reuse verify_json's serializers, so
/// one record shape serves both commands.
#pragma once

#include <string>

#include "analyze/rule.hpp"

namespace genoc::cli {

/// One `genoc analyze` instance row: identity fields, clean/findings
/// verdict, per-rule stats ("rules") and the findings ("diagnostics").
std::string analyze_report_json(const genoc::AnalyzeReport& report);

}  // namespace genoc::cli
