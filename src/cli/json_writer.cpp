#include "cli/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace genoc::cli {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  // Round-trip precision with the shortest representation that achieves
  // it: %.6g truncated every value needing more than 6 significant digits
  // (ns/op >= 1e6 — i.e. every 64x64-class benchmark — lost its low
  // digits in BENCH_*.json, corrupting the perf trajectory). 17 significant
  // digits always round-trip an IEEE-754 double; prefer fewer when the
  // shorter form parses back exactly.
  char buf[64];
  for (const int precision : {6, 15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

std::string json_array(const std::vector<std::string>& elements) {
  std::string out = "[";
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += elements[i];
  }
  out += "]";
  return out;
}

JsonObject& JsonObject::add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + json_escape(value) + "\"");
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, const char* value) {
  return add(key, std::string(value));
}

JsonObject& JsonObject::add(const std::string& key, double value) {
  fields_.emplace_back(key, json_number(value));
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::add_raw(const std::string& key,
                                const std::string& json) {
  fields_.emplace_back(key, json);
  return *this;
}

std::string JsonObject::to_string() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += "  \"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
    if (i + 1 != fields_.size()) {
      out += ",";
    }
    out += "\n";
  }
  out += "}\n";
  return out;
}

}  // namespace genoc::cli
