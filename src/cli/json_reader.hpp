/// \file json_reader.hpp
/// \brief Minimal JSON parser — the read half of the driver's
///        machine-readable interface.
///
/// The writer (json_writer.hpp) emits the verify/bench artifacts; this
/// parser reads them back for the `verify --baseline` trend report and the
/// Diagnostic round-trip tests. Scope-matched on purpose: full JSON value
/// model (null/bool/number/string/array/object), UTF-8 passed through
/// verbatim, \uXXXX escapes decoded for the BMP (surrogate pairs rejected —
/// the writer never emits them), numbers as double (the writer's own
/// round-trip precision). Dependency-free like the writer: the container
/// bakes no JSON library.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace genoc::cli {

/// One parsed JSON value. Object member order is preserved (the writer is
/// insertion-ordered; trend diffs want stable iteration).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses \p text as one JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). On failure returns nullopt and stores a
  /// message with the byte offset in *error.
  static std::optional<JsonValue> parse(const std::string& text,
                                        std::string* error);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; each requires the matching kind (ContractViolation
  /// otherwise — probe with the predicates first).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// The member named \p key, or nullptr (requires is_object()).
  const JsonValue* find(const std::string& key) const;

  /// Convenience lookups returning nullopt on missing key or kind mismatch.
  std::optional<bool> get_bool(const std::string& key) const;
  std::optional<double> get_number(const std::string& key) const;
  std::optional<std::string> get_string(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

}  // namespace genoc::cli
