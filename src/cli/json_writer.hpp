/// \file json_writer.hpp
/// \brief Minimal JSON object serializer for the machine-readable outputs
///        of the `genoc` driver (bench results, verify/sim reports).
///
/// Dependency-free on purpose: the container bakes no JSON library, and the
/// outputs are flat-ish records a hand-rolled writer covers comfortably.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace genoc::cli {

/// Append-only JSON object builder. Fields keep insertion order; nesting is
/// supported by adding a fully-built child as a raw value.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& value);
  JsonObject& add(const std::string& key, const char* value);
  JsonObject& add(const std::string& key, double value);
  JsonObject& add(const std::string& key, std::int64_t value);
  JsonObject& add(const std::string& key, std::uint64_t value);
  JsonObject& add(const std::string& key, bool value);
  /// Adds \p json verbatim (an already-serialized object or array).
  JsonObject& add_raw(const std::string& key, const std::string& json);

  /// Serializes with 2-space indentation and a trailing newline.
  std::string to_string() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& text);

/// Serializes a list of pre-serialized objects as a JSON array.
std::string json_array(const std::vector<std::string>& elements);

/// Formats a double as a JSON number (finite; NaN/inf become 0).
std::string json_number(double value);

}  // namespace genoc::cli
