#include "cli/verify_json.hpp"

#include <vector>

#include "cli/json_writer.hpp"

namespace genoc::cli {

namespace {

std::string counter_json(const genoc::ArtifactCounter& counter) {
  JsonObject obj;
  obj.add("misses", counter.misses).add("hits", counter.hits);
  return obj.to_string();
}

/// The legacy verdict-row fields, in their pre-pipeline order — the one
/// place the field list lives.
void add_verdict_fields(JsonObject& obj, const genoc::InstanceVerdict& verdict) {
  obj.add("instance", verdict.instance)
      .add("spec", verdict.spec)
      .add("topology", verdict.topology)
      .add("routing", verdict.routing)
      .add("switching", verdict.switching)
      .add("nodes", static_cast<std::uint64_t>(verdict.nodes))
      .add("ports", static_cast<std::uint64_t>(verdict.ports))
      .add("dep_edges", static_cast<std::uint64_t>(verdict.edges))
      .add("deterministic", verdict.deterministic)
      .add("dep_acyclic", verdict.dep_acyclic)
      .add("method", verdict.method)
      .add("deadlock_free", verdict.deadlock_free)
      .add("expected_deadlock_free", verdict.expected_deadlock_free)
      .add("as_expected", verdict.as_expected())
      .add("constraints_ok", verdict.constraints_ok)
      .add("checks", verdict.checks)
      .add("wall_ms", verdict.wall_ms)
      .add("cpu_ms", verdict.cpu_ms)
      .add("max_rss_kb", static_cast<std::int64_t>(verdict.max_rss_kb))
      .add("note", verdict.note);
}

}  // namespace

std::string diagnostic_json(const genoc::Diagnostic& diagnostic) {
  JsonObject witness;
  for (const auto& [key, value] : diagnostic.witness) {
    witness.add(key, value);
  }
  JsonObject obj;
  obj.add("stage", diagnostic.stage)
      .add("severity", severity_name(diagnostic.severity))
      .add("code", diagnostic.code)
      .add("message", diagnostic.message)
      .add_raw("witness", witness.to_string());
  return obj.to_string();
}

std::string stage_stats_json(const genoc::StageStats& stats) {
  JsonObject obj;
  obj.add("stage", stats.stage)
      .add("ran", stats.ran)
      .add("passed", stats.passed)
      .add("skip_reason", stats.skip_reason)
      .add("checks", stats.checks)
      .add("wall_ms", stats.wall_ms)
      .add("cpu_ms", stats.cpu_ms);
  return obj.to_string();
}

std::string cache_stats_json(const genoc::ArtifactCacheStats& stats) {
  JsonObject obj;
  obj.add_raw("contexts", counter_json(stats.contexts))
      .add_raw("primed", counter_json(stats.primed))
      .add_raw("dep_graph", counter_json(stats.dep_graph))
      .add_raw("acyclicity", counter_json(stats.acyclicity))
      .add_raw("escape", counter_json(stats.escape))
      .add_raw("constraints", counter_json(stats.constraints));
  return obj.to_string();
}

std::string report_json(const genoc::VerifyReport& report) {
  return report_json(report, std::string());
}

std::string report_json(const genoc::VerifyReport& report,
                        const std::string& analysis_raw) {
  std::vector<std::string> stages;
  stages.reserve(report.stages.size());
  for (const genoc::StageStats& stats : report.stages) {
    stages.push_back(stage_stats_json(stats));
  }
  std::vector<std::string> diagnostics;
  diagnostics.reserve(report.diagnostics.size());
  for (const genoc::Diagnostic& diagnostic : report.diagnostics) {
    diagnostics.push_back(diagnostic_json(diagnostic));
  }
  // The verdict row first (field-compatible with the legacy shape), the
  // typed records appended.
  JsonObject obj;
  add_verdict_fields(obj, report.verdict);
  obj.add_raw("stages", json_array(stages))
      .add_raw("diagnostics", json_array(diagnostics))
      .add_raw("cache", cache_stats_json(report.cache));
  if (!analysis_raw.empty()) {
    obj.add_raw("analysis", analysis_raw);
  }
  return obj.to_string();
}

std::optional<genoc::Diagnostic> diagnostic_from_json(const JsonValue& value,
                                                      std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) {
      *error = what;
    }
    return std::nullopt;
  };
  if (!value.is_object()) {
    return fail("diagnostic: not a JSON object");
  }
  genoc::Diagnostic diagnostic;
  const std::optional<std::string> stage = value.get_string("stage");
  const std::optional<std::string> severity = value.get_string("severity");
  const std::optional<std::string> code = value.get_string("code");
  const std::optional<std::string> message = value.get_string("message");
  if (!stage || !severity || !code || !message) {
    return fail("diagnostic: missing stage/severity/code/message");
  }
  if (!genoc::parse_severity(*severity, &diagnostic.severity)) {
    return fail("diagnostic: unknown severity '" + *severity + "'");
  }
  diagnostic.stage = *stage;
  diagnostic.code = *code;
  diagnostic.message = *message;
  const JsonValue* witness = value.find("witness");
  if (witness == nullptr || !witness->is_object()) {
    return fail("diagnostic: missing witness object");
  }
  for (const auto& [key, entry] : witness->members()) {
    if (!entry.is_string()) {
      return fail("diagnostic: witness value for '" + key +
                  "' is not a string");
    }
    diagnostic.witness.emplace_back(key, entry.as_string());
  }
  return diagnostic;
}

std::optional<genoc::StageStats> stage_stats_from_json(const JsonValue& value,
                                                       std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) {
      *error = what;
    }
    return std::nullopt;
  };
  if (!value.is_object()) {
    return fail("stage stats: not a JSON object");
  }
  const std::optional<std::string> stage = value.get_string("stage");
  const std::optional<bool> ran = value.get_bool("ran");
  const std::optional<bool> passed = value.get_bool("passed");
  const std::optional<std::string> skip_reason =
      value.get_string("skip_reason");
  const std::optional<double> checks = value.get_number("checks");
  const std::optional<double> cpu_ms = value.get_number("cpu_ms");
  if (!stage || !ran || !passed || !skip_reason || !checks || !cpu_ms) {
    return fail("stage stats: missing field");
  }
  // wall_ms is absent from schema-v1 rows, where cpu_ms held the wall-clock
  // figure — fall back rather than reject.
  const std::optional<double> wall_ms = value.get_number("wall_ms");
  genoc::StageStats stats;
  stats.stage = *stage;
  stats.ran = *ran;
  stats.passed = *passed;
  stats.skip_reason = *skip_reason;
  stats.checks = static_cast<std::uint64_t>(*checks);
  stats.wall_ms = wall_ms.value_or(*cpu_ms);
  stats.cpu_ms = *cpu_ms;
  return stats;
}

std::string metrics_json(const genoc::obs::MetricsSnapshot& snapshot) {
  JsonObject counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters.add(name, value);
  }
  JsonObject gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.add(name, value);
  }
  JsonObject histograms;
  for (const auto& [name, hist] : snapshot.histograms) {
    std::vector<std::string> buckets;
    buckets.reserve(hist.buckets.size());
    for (const auto& [bound, count] : hist.buckets) {
      JsonObject bucket;
      bucket.add("le", bound).add("count", count);
      buckets.push_back(bucket.to_string());
    }
    JsonObject entry;
    entry.add("count", hist.count)
        .add("sum", hist.sum)
        .add("max", hist.max)
        .add_raw("buckets", json_array(buckets));
    histograms.add_raw(name, entry.to_string());
  }
  JsonObject obj;
  obj.add_raw("counters", counters.to_string())
      .add_raw("gauges", gauges.to_string())
      .add_raw("histograms", histograms.to_string());
  return obj.to_string();
}

}  // namespace genoc::cli
