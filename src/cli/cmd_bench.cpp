/// \file cmd_bench.cpp
/// \brief `genoc bench` — timed micro-benchmarks over the library's hot
///        paths, with machine-readable `BENCH_<name>.json` output so the
///        perf trajectory accumulates across PRs.
///
/// Self-contained on purpose: the Google-Benchmark reproductions under
/// bench/ stay available as separate binaries, but this subcommand must run
/// (and emit JSON) on machines without libbenchmark.
#include <algorithm>
#include <atomic>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "cli/commands.hpp"
#include "cli/json_writer.hpp"
#include "core/obligations.hpp"
#include "deadlock/depgraph.hpp"
#include "deadlock/escape.hpp"
#include "graph/cycle.hpp"
#include "graph/tarjan.hpp"
#include "instance/batch_runner.hpp"
#include "instance/registry.hpp"
#include "obs/trace.hpp"
#include "routing/cmesh_dor.hpp"
#include "routing/odd_even.hpp"
#include "routing/torus_xy.hpp"
#include "sim/simulator.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "verify/artifacts.hpp"
#include "workload/traffic.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc bench [options]\n"
    "  --json          write one BENCH_<name>.json per benchmark\n"
    "  --out-dir DIR   directory for the JSON files (default: cwd)\n"
    "  --filter STR    only run benchmarks whose name contains STR\n"
    "  --min-ms N      minimum measured time per benchmark (default 100)\n"
    "  --threads N     pool size for the *_parallel benchmarks\n"
    "                  (default 0 = hardware concurrency)\n"
    "  --trace F       record a Chrome trace-event span trace of the whole\n"
    "                  run to F (default genoc-bench.trace.json); load it\n"
    "                  in Perfetto or chrome://tracing\n";

/// Opaque sink defeating dead-code elimination of benchmark bodies.
std::atomic<std::uint64_t> g_sink{0};

void keep(std::uint64_t value) {
  g_sink.fetch_add(value, std::memory_order_relaxed);
}

struct MicroBench {
  std::string name;
  std::string what;
  std::function<void()> body;
};

struct BenchResult {
  std::string name;
  std::string what;
  std::uint64_t iterations = 0;
  double total_ms = 0.0;
  double ns_per_op() const {
    return iterations == 0 ? 0.0 : total_ms * 1e6 / iterations;
  }
  double ops_per_sec() const {
    return total_ms <= 0.0 ? 0.0 : iterations * 1e3 / total_ms;
  }
};

/// Runs \p bench until at least \p min_ms of measured wall time has
/// accumulated, growing the batch geometrically so the timer overhead
/// amortizes away.
BenchResult run_bench(const MicroBench& bench, double min_ms) {
  bench.body();  // warm-up (first-touch allocations, caches)
  BenchResult result{bench.name, bench.what, 0, 0.0};
  std::uint64_t batch = 1;
  Stopwatch total;
  while (true) {
    Stopwatch timer;
    for (std::uint64_t i = 0; i < batch; ++i) {
      bench.body();
    }
    result.total_ms += timer.elapsed_ms();
    result.iterations += batch;
    if (result.total_ms >= min_ms) {
      break;
    }
    if (total.elapsed_ms() > 100.0 * min_ms) {
      break;  // safety valve for pathologically slow bodies
    }
    batch *= 2;
  }
  return result;
}

std::vector<MicroBench> build_suite(std::size_t threads) {
  std::vector<MicroBench> suite;

  suite.push_back({"mesh_construct_16x16", "Mesh2D(16,16) construction", [] {
                     const Mesh2D mesh(16, 16);
                     keep(mesh.port_count());
                   }});

  {
    auto mesh = std::make_shared<Mesh2D>(8, 8);
    suite.push_back({"exy_dep_8x8", "closed-form Exy_dep on 8x8", [mesh] {
                       const PortDepGraph dep = build_exy_dep(*mesh);
                       keep(dep.graph.edge_count());
                     }});
    auto routing = std::make_shared<XYRouting>(*mesh);
    // The lambda must keep the mesh alive itself: --filter may erase the
    // sibling benchmark that also captures it.
    suite.push_back({"depgraph_generic_8x8", "generic build_dep_graph on 8x8",
                     [mesh, routing] {
                       const PortDepGraph dep = build_dep_graph(*routing);
                       keep(dep.graph.edge_count());
                     }});
    // The headline of this perf pass: the per-destination fast builder
    // against the generic oracle above. CI guards the >= 10x ratio.
    suite.push_back({"depgraph_fast_8x8",
                     "per-destination build_dep_graph_fast on 8x8",
                     [mesh, routing] {
                       const PortDepGraph dep = build_dep_graph_fast(*routing);
                       keep(dep.graph.edge_count());
                     }});
  }

  {
    // The same fast-vs-generic guard on the first non-grid family: an
    // 8x8 c=4 concentrated mesh (the cmesh8-dor preset's network, 960
    // ports, 256 destinations). The fast builder takes the id-native
    // sweep here — no Port-tuple BFS — so this pins the dialect the
    // grid benches above never touch.
    auto cmesh = std::make_shared<CMeshTopology>(8, 8, 4);
    auto routing = std::make_shared<CMeshDORRouting>(*cmesh);
    suite.push_back({"depgraph_generic_cmesh",
                     "generic build_dep_graph on the 8x8 c=4 cmesh",
                     [cmesh, routing] {
                       const PortDepGraph dep = build_dep_graph(*routing);
                       keep(dep.graph.edge_count());
                     }});
    suite.push_back({"depgraph_fast_cmesh",
                     "id-native build_dep_graph_fast on the 8x8 c=4 cmesh",
                     [cmesh, routing] {
                       const PortDepGraph dep = build_dep_graph_fast(*routing);
                       keep(dep.graph.edge_count());
                     }});
  }

  {
    // The ROADMAP's scaling axis. depgraph_generic_8x8 above is the PR-1
    // baseline (~1.2 ms/op); these trace the per-destination fast builder
    // sequentially and destination-sharded up to 64x64, plus the parallel
    // SCC stage that keeps the cycle check linear at that scale.
    auto pool = std::make_shared<BatchRunner>(threads);
    auto mesh16 = std::make_shared<Mesh2D>(16, 16);
    auto routing16 = std::make_shared<XYRouting>(*mesh16);
    suite.push_back({"depgraph_generic_16x16",
                     "generic build_dep_graph on 16x16, sequential",
                     [mesh16, routing16] {
                       const PortDepGraph dep = build_dep_graph(*routing16);
                       keep(dep.graph.edge_count());
                     }});
    suite.push_back({"depgraph_parallel_16x16",
                     "fast builder on 16x16, destination-sharded",
                     [mesh16, routing16, pool] {
                       const PortDepGraph dep =
                           build_dep_graph_parallel(*routing16, *pool);
                       keep(dep.graph.edge_count());
                     }});
    auto mesh32 = std::make_shared<Mesh2D>(32, 32);
    auto routing32 = std::make_shared<XYRouting>(*mesh32);
    suite.push_back({"depgraph_parallel_32x32",
                     "fast builder on 32x32, destination-sharded",
                     [mesh32, routing32, pool] {
                       const PortDepGraph dep =
                           build_dep_graph_parallel(*routing32, *pool);
                       keep(dep.graph.edge_count());
                     }});
    auto mesh64 = std::make_shared<Mesh2D>(64, 64);
    auto routing64 = std::make_shared<XYRouting>(*mesh64);
    suite.push_back({"depgraph_fast_64x64",
                     "per-destination build_dep_graph_fast on 64x64",
                     [mesh64, routing64] {
                       const PortDepGraph dep =
                           build_dep_graph_fast(*routing64);
                       keep(dep.graph.edge_count());
                     }});
    suite.push_back({"depgraph_parallel_64x64",
                     "fast builder on 64x64, destination-sharded",
                     [mesh64, routing64, pool] {
                       const PortDepGraph dep =
                           build_dep_graph_parallel(*routing64, *pool);
                       keep(dep.graph.edge_count());
                     }});
    // Built on first use (the warm-up call), not at suite construction:
    // `--filter` would otherwise make every bench invocation pay the
    // ~0.2 s 64x64 build only to erase the SCC entries.
    auto dep64 = std::make_shared<std::optional<PortDepGraph>>();
    auto dep64_graph = [mesh64, routing64, dep64]() -> const Digraph& {
      if (!dep64->has_value()) {
        *dep64 = build_dep_graph_fast(*routing64);
      }
      return (*dep64)->graph;
    };
    suite.push_back({"tarjan_scc_64x64",
                     "sequential Tarjan on the 64x64 XY dep graph",
                     [dep64_graph] {
                       const SccResult scc = tarjan_scc(dep64_graph());
                       keep(scc.components.size());
                     }});
    suite.push_back({"scc_parallel_64x64",
                     "parallel SCC (trim + FW-BW) on the 64x64 XY dep graph",
                     [dep64_graph, pool] {
                       const SccResult scc =
                           parallel_scc(dep64_graph(), *pool);
                       keep(scc.components.size());
                     }});
    suite.push_back({"registry_verify_all",
                     "genoc verify --all: every non-heavy registered instance",
                     [pool] {
                       const auto verdicts = verify_instances(
                           InstanceRegistry::global().sweep_presets(),
                           pool.get());
                       keep(verdicts.size());
                     }});
    // Batch-wide artifact reuse, steady state: the store persists across
    // iterations, so after the first pass every dependency graph, primed
    // closure, SCC verdict and escape analysis is a cache hit — the
    // re-verification cost of a trend sweep (`verify --all --baseline`)
    // over unchanged instances.
    auto store = std::make_shared<ArtifactStore>();
    suite.push_back({"registry_verify_all_cached",
                     "verify --all with a persistent batch artifact store "
                     "(steady-state re-verification)",
                     [pool, store] {
                       InstanceVerifyOptions options;
                       options.artifacts = store.get();
                       const auto verdicts = verify_instances(
                           InstanceRegistry::global().sweep_presets(),
                           pool.get(), options);
                       keep(verdicts.size());
                     }});

    // This PR's perf pass: the escape-lane analysis — the 64x64-torus
    // bottleneck — sequential vs destination-sharded, and the
    // level-synchronous trim rounds on the torus dependency graph (wrap
    // rings survive the trim, so this exercises every parallel_scc stage).
    // CI guards the parallel/sequential escape ratio on multicore runners
    // (tools/check_bench_guard.py --escape-speedup).
    auto torus64 = std::make_shared<Mesh2D>(64, 64, true, true);
    auto torus64_routing = std::make_shared<TorusXYRouting>(*torus64);
    auto torus64_escape = std::make_shared<XYRouting>(*torus64);
    suite.push_back({"escape_sequential_64x64",
                     "escape-lane analysis on the 64x64 torus, sequential",
                     [torus64, torus64_routing, torus64_escape] {
                       const EscapeAnalysis analysis = analyze_escape(
                           *torus64_routing, *torus64_escape);
                       keep(analysis.deadlock_free ? 1 : 0);
                     }});
    suite.push_back({"escape_parallel_64x64",
                     "escape-lane analysis on the 64x64 torus, "
                     "destination-sharded",
                     [torus64, torus64_routing, torus64_escape, pool] {
                       const EscapeAnalysis analysis = analyze_escape(
                           *torus64_routing, *torus64_escape, pool.get());
                       keep(analysis.deadlock_free ? 1 : 0);
                     }});
    auto torus_dep = std::make_shared<std::optional<PortDepGraph>>();
    auto torus_dep_graph =
        [torus64, torus64_routing, torus_dep]() -> const Digraph& {
      if (!torus_dep->has_value()) {
        *torus_dep = build_dep_graph_fast(*torus64_routing);
      }
      return (*torus_dep)->graph;
    };
    suite.push_back({"trim_parallel_64x64",
                     "parallel SCC (level-synchronous trim rounds) on the "
                     "64x64 torus dep graph",
                     [torus_dep_graph, pool] {
                       const SccResult scc =
                           parallel_scc(torus_dep_graph(), *pool);
                       keep(scc.components.size());
                     }});

    // This PR's perf pass: the tiered reachability closure and the
    // analytic dependency-graph builder. closure_prime_* constructs a
    // fresh Odd-Even routing each iteration (port-mode, so the closure
    // lands in the compressed tier) and primes every per-destination row,
    // sharded over the pool — the eager-priming cost the lazy tier
    // amortizes away. depgraph_fast_256x256 is the O(ports) analytic
    // builder that makes the first 256x256 verify tractable.
    auto prime64 = std::make_shared<Mesh2D>(64, 64);
    suite.push_back({"closure_prime_64x64",
                     "compressed closure, full prime of Odd-Even on 64x64",
                     [prime64, pool] {
                       OddEvenRouting routing(*prime64);
                       routing.prime(*pool);
                       keep(routing.closure_rows_built());
                     }});
    auto prime128 = std::make_shared<Mesh2D>(128, 128);
    suite.push_back({"closure_prime_128x128",
                     "compressed closure, full prime of Odd-Even on 128x128",
                     [prime128, pool] {
                       OddEvenRouting routing(*prime128);
                       routing.prime(*pool);
                       keep(routing.closure_rows_built());
                     }});
    auto mesh256 = std::make_shared<Mesh2D>(256, 256);
    auto routing256 = std::make_shared<XYRouting>(*mesh256);
    suite.push_back({"depgraph_fast_256x256",
                     "analytic O(ports) build_dep_graph_fast on 256x256",
                     [mesh256, routing256] {
                       const PortDepGraph dep =
                           build_dep_graph_fast(*routing256);
                       keep(dep.graph.edge_count());
                     }});
    // End-to-end verify anchors for the CI gates: mesh128-xy must stay
    // under 2 s wall at 4 threads (--max-ns), mesh256-xy under the RSS
    // ceiling (--max-rss-kb) — the two headline numbers of this pass.
    const InstanceSpec spec128 = *InstanceRegistry::global().find("mesh128-xy");
    suite.push_back({"verify_mesh128_xy",
                     "full verify of the mesh128-xy preset",
                     [spec128, pool] {
                       const auto verdicts = verify_instances(
                           {spec128}, pool.get());
                       keep(verdicts.front().deadlock_free ? 1 : 0);
                     }});
    const InstanceSpec spec256 = *InstanceRegistry::global().find("mesh256-xy");
    suite.push_back({"verify_mesh256_xy",
                     "full verify of the mesh256-xy heavy preset",
                     [spec256, pool] {
                       const auto verdicts = verify_instances(
                           {spec256}, pool.get());
                       keep(verdicts.front().deadlock_free ? 1 : 0);
                     }});
  }

  {
    auto dep = std::make_shared<PortDepGraph>(build_exy_dep(Mesh2D(16, 16)));
    suite.push_back({"cycle_check_16x16", "is_acyclic on Exy_dep(16x16)",
                     [dep] { keep(is_acyclic(dep->graph) ? 1 : 0); }});
    suite.push_back({"tarjan_scc_16x16", "Tarjan SCC on Exy_dep(16x16)",
                     [dep] {
                       const SccResult scc = tarjan_scc(dep->graph);
                       keep(scc.components.size());
                     }});
  }

  {
    auto hermes = std::make_shared<HermesInstance>(3, 3, 2);
    suite.push_back(
        {"verify_obligations_3x3", "full obligation suite on 3x3", [hermes] {
           ObligationOptions options;
           options.workloads = 1;
           options.messages_per_workload = 12;
           const ObligationSuite suite_run =
               run_hermes_obligations(*hermes, options);
           keep(suite_run.all_satisfied() ? 1 : 0);
         }});
  }

  {
    // Fault-campaign perf: the delta builder derives each single-link
    // variant's dependency graph from the base mesh16 graph by filtering
    // out edges incident to the removed ports; CI guards its >= 5x
    // advantage over rebuilding every variant's graph from scratch with
    // the fast builder (same 16-variant sample, every 30th link).
    struct FaultVariant {
      std::shared_ptr<Mesh2D> mesh;
      std::shared_ptr<XYRouting> routing;
      std::vector<PortId> removed;
    };
    auto base_mesh = std::make_shared<Mesh2D>(16, 16);
    auto base_routing = std::make_shared<XYRouting>(*base_mesh);
    auto base_dep =
        std::make_shared<PortDepGraph>(build_dep_graph_fast(*base_routing));
    auto variants = std::make_shared<std::vector<FaultVariant>>();
    std::vector<LinkFault> links;
    for (std::int32_t node = 0; node < 16 * 16; ++node) {
      for (const PortName name : {PortName::kEast, PortName::kNorth}) {
        const LinkFault fault{node, name};
        if (link_fault_exists(fault, 16, 16, false, false)) {
          links.push_back(canonical_link_fault(fault, 16, 16, false, false));
        }
      }
    }
    for (std::size_t i = 0; i < links.size(); i += 30) {
      const LinkFault fault = links[i];
      const LinkFault peer = link_fault_peer(fault, 16, 16, false, false);
      FaultVariant variant;
      variant.mesh = std::make_shared<Mesh2D>(16, 16, false, false,
                                              std::vector<LinkFault>{fault});
      variant.routing = std::make_shared<XYRouting>(*variant.mesh);
      for (const LinkFault& end : {fault, peer}) {
        for (const Direction dir : {Direction::kIn, Direction::kOut}) {
          variant.removed.push_back(base_mesh->id(
              Port{end.node % 16, end.node / 16, end.name, dir}));
        }
      }
      std::sort(variant.removed.begin(), variant.removed.end());
      variants->push_back(std::move(variant));
    }
    suite.push_back({"campaign_delta_mesh16_single",
                     "delta dep-graph build of 16 single-link mesh16 variants",
                     [base_dep, variants] {
                       for (const FaultVariant& v : *variants) {
                         const PortDepGraph dep = build_dep_graph_delta(
                             *base_dep, *v.routing, v.removed);
                         keep(dep.graph.edge_count());
                       }
                     }});
    suite.push_back({"campaign_rebuild_mesh16_single",
                     "full build_dep_graph_fast of the same 16 variants",
                     [variants] {
                       for (const FaultVariant& v : *variants) {
                         const PortDepGraph dep =
                             build_dep_graph_fast(*v.routing);
                         keep(dep.graph.edge_count());
                       }
                     }});
    // End-to-end campaign anchor: all 480 single-link variants of
    // mesh16-xy — screen, verify, shared artifacts — in one op.
    const InstanceSpec spec16 = *InstanceRegistry::global().find("mesh16-xy");
    suite.push_back({"campaign_mesh16_single",
                     "end-to-end single-link fault campaign on mesh16-xy",
                     [spec16, threads] {
                       CampaignOptions options;
                       options.plan.kind = FaultPlan::Kind::kSingle;
                       options.threads = threads;
                       const CampaignReport report =
                           run_campaign(spec16, options);
                       keep(report.verified);
                     }});
  }

  {
    auto hermes = std::make_shared<HermesInstance>(8, 8, 2);
    Rng rng(2010);
    auto uniform = std::make_shared<std::vector<TrafficPair>>(
        uniform_random_traffic(hermes->mesh(), 128, rng));
    suite.push_back(
        {"sim_uniform_8x8", "GeNoC2D, 128 uniform messages on 8x8",
         [hermes, uniform] {
           const SimulationReport report = simulate(*hermes, *uniform);
           keep(report.run.steps);
         }});
    auto transpose = std::make_shared<std::vector<TrafficPair>>(
        transpose_traffic(hermes->mesh()));
    suite.push_back(
        {"sim_transpose_8x8", "GeNoC2D, transpose pattern on 8x8",
         [hermes, transpose] {
           const SimulationReport report = simulate(*hermes, *transpose);
           keep(report.run.steps);
         }});
  }

  return suite;
}

bool write_json(const BenchResult& result, const std::string& out_dir) {
  JsonObject obj;
  obj.add("benchmark", result.name)
      .add("suite", "genoc-bench")
      .add("what", result.what)
      .add("iterations", result.iterations)
      .add("total_ms", result.total_ms)
      .add("ns_per_op", result.ns_per_op())
      .add("ops_per_sec", result.ops_per_sec())
      .add("max_rss_kb", peak_rss_kb())
      .add("unix_time", static_cast<std::int64_t>(std::time(nullptr)));
  std::string path = out_dir.empty() ? "" : out_dir + "/";
  path += "BENCH_" + result.name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "genoc bench: cannot write " << path << "\n";
    return false;
  }
  out << obj.to_string();
  std::cout << "  wrote " << path << "\n";
  return true;
}

}  // namespace

int cmd_bench(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const bool as_json = args.has("json");
  const std::string out_dir = args.get("out-dir", "");
  const std::string filter = args.get("filter", "");
  const double min_ms = args.get_double("min-ms", 100.0);
  const auto threads =
      static_cast<std::size_t>(args.get_int_in("threads", 0, 0, 256));
  const std::string trace_path =
      args.has("trace") ? (args.get("trace", "").empty()
                               ? std::string("genoc-bench.trace.json")
                               : args.get("trace", ""))
                        : std::string();
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }
  if (min_ms <= 0.0 || min_ms > 60000.0) {
    std::cerr << "genoc bench: --min-ms must be in (0, 60000], got " << min_ms
              << "\n";
    return 2;
  }
  if (as_json) {
    if (!out_dir.empty()) {
      // Create the output directory up front: failing after minutes of
      // measurement would discard every result.
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);
      if (ec) {
        std::cerr << "genoc bench: cannot create --out-dir '" << out_dir
                  << "': " << ec.message() << "\n";
        return 2;
      }
    }
    // create_directories succeeds on an existing read-only directory, so
    // probe actual writability before running anything: an unwritable
    // destination must exit 2 before the measurement, not after it.
    const std::string probe_path =
        (out_dir.empty() ? std::string(".") : out_dir) +
        "/BENCH_writability.probe";
    {
      std::ofstream probe(probe_path);
      if (!probe) {
        std::cerr << "genoc bench: --out-dir '"
                  << (out_dir.empty() ? "." : out_dir)
                  << "' is not writable\n";
        return 2;
      }
    }
    std::error_code ec;
    std::filesystem::remove(probe_path, ec);
  }

  // Open-before-run, like verify: an unwritable --trace path must exit 2
  // before the minutes of measurement, not after.
  std::optional<std::ofstream> trace_out;
  if (!trace_path.empty()) {
    trace_out.emplace(trace_path);
    if (!*trace_out) {
      std::cerr << "genoc bench: cannot write --trace file '" << trace_path
                << "' (check the directory exists and is writable)\n";
      return 2;
    }
    obs::TraceRecorder::global().start();
  }

  std::vector<MicroBench> suite = build_suite(threads);
  if (!filter.empty()) {
    std::erase_if(suite, [&filter](const MicroBench& bench) {
      return bench.name.find(filter) == std::string::npos;
    });
  }
  if (suite.empty()) {
    std::cerr << "genoc bench: no benchmark matches filter '" << filter
              << "'\n";
    return 2;
  }
  std::vector<BenchResult> results;
  std::cout << "genoc bench — " << suite.size() << " micro-benchmarks, >= "
            << min_ms << " ms each\n\n";
  for (const MicroBench& bench : suite) {
    std::cout << "  running " << bench.name << " ...\n";
    // Span names must be static strings; the benchmark name rides in the
    // detail payload instead.
    obs::TraceSpan span("bench");
    if (span.active()) {
      span.set_detail(bench.name);
    }
    results.push_back(run_bench(bench, min_ms));
  }

  if (trace_out.has_value()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    recorder.stop();
    recorder.write_json(*trace_out);
    trace_out->flush();
    if (!*trace_out) {
      std::cerr << "genoc bench: writing --trace file '" << trace_path
                << "' failed\n";
      return 2;
    }
    std::cerr << "genoc bench: wrote " << recorder.event_count()
              << " trace events to " << trace_path << "\n";
  }

  std::cout << "\n";
  Table table({"Benchmark", "Iterations", "ns/op", "ops/s"});
  for (const BenchResult& result : results) {
    table.add_row({result.name, format_count(result.iterations),
                   format_double(result.ns_per_op(), 1),
                   format_double(result.ops_per_sec(), 1)});
  }
  std::cout << table.render() << "\n";

  if (as_json) {
    for (const BenchResult& result : results) {
      if (!write_json(result, out_dir)) {
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace genoc::cli
