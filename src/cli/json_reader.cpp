#include "cli/json_reader.hpp"

#include <cctype>
#include <cstdlib>

#include "util/require.hpp"

namespace genoc::cli {

/// Recursive-descent parser over one in-memory document. A named (not
/// anonymous-namespace) class so the header can befriend it.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_whitespace();
    JsonValue value;
    if (!parse_value(value, 0)) {
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      return fail("trailing garbage after the document"), std::nullopt;
    }
    return value;
  }

 private:
  // Far beyond the writer's nesting depth — a stack-overflow guard, not a
  // limit real artifacts approach.
  static constexpr std::size_t kMaxDepth = 64;

  void fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t length) {
    if (text_.compare(pos_, length, word) != 0) {
      fail(std::string("invalid literal (expected '") + word + "')");
      return false;
    }
    pos_ += length;
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxDepth) {
      fail("nesting deeper than " + std::to_string(kMaxDepth));
      return false;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of document");
      return false;
    }
    switch (text_[pos_]) {
      case 'n':
        out.kind_ = JsonValue::Kind::kNull;
        return literal("null", 4);
      case 't':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return literal("true", 4);
      case 'f':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return literal("false", 5);
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.string_);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      fail("invalid number");
      return false;
    }
    // Grammar check (no leading zeros, one dot, sane exponent), then one
    // strtod over the validated span.
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number (digit required after '.')");
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number (digit required in exponent)");
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out.kind_ = JsonValue::Kind::kNumber;
    out.number_ = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        break;
      }
      switch (text_[pos_]) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 >= text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 1; i <= 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
              return false;
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are unsupported");
            return false;
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          pos_ += 4;
          break;
        }
        default:
          fail("invalid escape character");
          return false;
      }
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    out.kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      skip_whitespace();
      if (!parse_value(element, depth + 1)) {
        return false;
      }
      out.array_.push_back(std::move(element));
      skip_whitespace();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    out.kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected a quoted member name");
        return false;
      }
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':' after member name");
        return false;
      }
      ++pos_;
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) {
        return false;
      }
      out.object_.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::parse(const std::string& text,
                                          std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  return JsonParser(text, error).run();
}

bool JsonValue::as_bool() const {
  GENOC_REQUIRE(is_bool(), "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  GENOC_REQUIRE(is_number(), "JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  GENOC_REQUIRE(is_string(), "JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  GENOC_REQUIRE(is_array(), "JsonValue: not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  GENOC_REQUIRE(is_object(), "JsonValue: not an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

std::optional<bool> JsonValue::get_bool(const std::string& key) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->is_bool()
             ? std::optional<bool>(value->as_bool())
             : std::nullopt;
}

std::optional<double> JsonValue::get_number(const std::string& key) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->is_number()
             ? std::optional<double>(value->as_number())
             : std::nullopt;
}

std::optional<std::string> JsonValue::get_string(const std::string& key) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->is_string()
             ? std::optional<std::string>(value->as_string())
             : std::nullopt;
}

}  // namespace genoc::cli
