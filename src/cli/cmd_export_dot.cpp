/// \file cmd_export_dot.cpp
/// \brief `genoc export-dot` — emit a mesh's port dependency graph as
///        Graphviz DOT (the paper's Fig. 3), from either the closed-form
///        Exy_dep or the generic construction.
#include <fstream>
#include <iostream>

#include "cli/commands.hpp"
#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "routing/xy.hpp"
#include "topology/mesh.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc export-dot [options]\n"
    "  --width N     mesh width (default 2)\n"
    "  --height N    mesh height (default 2)\n"
    "  --generic     use the generic construction (build_dep_graph) instead\n"
    "                of the paper's closed-form Exy_dep\n"
    "  --name NAME   graph name in the DOT output (default exy_dep)\n"
    "  --out FILE    write to FILE instead of stdout\n";

}  // namespace

int cmd_export_dot(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto width =
      static_cast<std::int32_t>(args.get_int_in("width", 2, 2, 512));
  const auto height =
      static_cast<std::int32_t>(args.get_int_in("height", 2, 2, 512));
  const bool generic = args.has("generic");
  const std::string name = args.get("name", "exy_dep");
  const std::string out_path = args.get("out", "");
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }
  const Mesh2D mesh(width, height);
  PortDepGraph dep;
  if (generic) {
    const XYRouting routing(mesh);
    dep = build_dep_graph(routing);
  } else {
    dep = build_exy_dep(mesh);
  }
  const std::string dot = dep.to_dot(name);

  if (out_path.empty()) {
    std::cout << dot;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "genoc export-dot: cannot open '" << out_path
                << "' for writing\n";
      return 1;
    }
    out << dot;
    std::cerr << "Wrote " << dep.graph.vertex_count() << " vertices / "
              << dep.graph.edge_count() << " edges to " << out_path
              << " (render: dot -Tpdf " << out_path << " -o fig3.pdf)\n";
  }
  std::cerr << "Dependency graph is "
            << (is_acyclic(dep.graph) ? "acyclic — deadlock-free (Theorem 1)"
                                      : "CYCLIC — deadlock possible")
            << "\n";
  return 0;
}

}  // namespace genoc::cli
