/// \file cmd_export_dot.cpp
/// \brief `genoc export-dot` — emit a port dependency graph as Graphviz DOT
///        (the paper's Fig. 3): the closed-form Exy_dep, the generic
///        construction, or any registered instance via --instance.
#include <cctype>
#include <fstream>
#include <iostream>
#include <optional>

#include "cli/commands.hpp"
#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "instance/network_instance.hpp"
#include "instance/registry.hpp"
#include "routing/xy.hpp"
#include "topology/mesh.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc export-dot [options]\n"
    "  --instance X  dump the dependency graph of a registered instance\n"
    "                (see `genoc list`) or of an ad-hoc key=value spec;\n"
    "                overrides --width/--height/--generic\n"
    "  --width N     mesh width (default 2)\n"
    "  --height N    mesh height (default 2)\n"
    "  --generic     use the generic construction (build_dep_graph) instead\n"
    "                of the paper's closed-form Exy_dep\n"
    "  --name NAME   graph name in the DOT output (default exy_dep, or the\n"
    "                instance name)\n"
    "  --out FILE    write to FILE instead of stdout\n";

/// DOT identifiers admit [A-Za-z0-9_] without quoting; instance names like
/// "torus8-xy" are mangled to stay directly renderable.
std::string dot_identifier(const std::string& name) {
  std::string id;
  for (const char c : name) {
    id += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return id.empty() || std::isdigit(static_cast<unsigned char>(id.front())) != 0
             ? "dep_" + id
             : id;
}

}  // namespace

int cmd_export_dot(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string instance = args.get("instance", "");
  const auto width =
      static_cast<std::int32_t>(args.get_int_in("width", 2, 2, 512));
  const auto height =
      static_cast<std::int32_t>(args.get_int_in("height", 2, 2, 512));
  const bool generic = args.has("generic");
  const std::string name = args.get("name", "");
  const std::string out_path = args.get("out", "");
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }

  PortDepGraph dep;
  std::optional<NetworkInstance> network;  // keeps mesh/routing alive
  std::optional<Mesh2D> mesh;
  std::string graph_name = name;
  if (!instance.empty()) {
    std::string error;
    const std::optional<InstanceSpec> spec =
        InstanceRegistry::global().resolve(instance, &error);
    if (!spec) {
      std::cerr << "genoc export-dot: " << error << "\n";
      return 2;
    }
    network.emplace(*spec);
    dep = network->dependency_graph();
    if (graph_name.empty()) {
      graph_name = dot_identifier(network->name());
    }
  } else {
    mesh.emplace(width, height);
    if (generic) {
      const XYRouting routing(*mesh);
      dep = build_dep_graph(routing);
    } else {
      dep = build_exy_dep(*mesh);
    }
    if (graph_name.empty()) {
      graph_name = "exy_dep";
    }
  }
  const std::string dot = dep.to_dot(graph_name);

  if (out_path.empty()) {
    std::cout << dot;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "genoc export-dot: cannot open '" << out_path
                << "' for writing\n";
      return 1;
    }
    out << dot;
    std::cerr << "Wrote " << dep.graph.vertex_count() << " vertices / "
              << dep.graph.edge_count() << " edges to " << out_path
              << " (render: dot -Tpdf " << out_path << " -o fig3.pdf)\n";
  }
  std::cerr << "Dependency graph is "
            << (is_acyclic(dep.graph) ? "acyclic — deadlock-free (Theorem 1)"
                                      : "CYCLIC — deadlock possible")
            << "\n";
  return 0;
}

}  // namespace genoc::cli
