#include "cli/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace genoc::cli {

namespace {

bool is_flag(const std::string& token) {
  return token.size() > 2 && token.rfind("--", 0) == 0;
}

}  // namespace

Args::Args(int argc, char** argv, int begin) {
  for (int i = begin; i < argc; ++i) {
    const std::string token = argv[i];
    if (!is_flag(token)) {
      positionals_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // bare boolean flag
    }
  }
}

bool Args::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) != 0;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(it->second, &consumed);
    if (consumed != it->second.size()) {
      throw std::invalid_argument(it->second);
    }
    return value;
  } catch (const std::exception&) {
    errors_.push_back("--" + name + " expects an integer, got '" + it->second +
                      "'");
    return fallback;
  }
}

std::int64_t Args::get_int_in(const std::string& name, std::int64_t fallback,
                              std::int64_t lo, std::int64_t hi) const {
  const std::int64_t value = get_int(name, fallback);
  if (value < lo || value > hi) {
    errors_.push_back("--" + name + " must be in [" + std::to_string(lo) +
                      ", " + std::to_string(hi) + "], got " +
                      std::to_string(value));
    return fallback;
  }
  return value;
}

double Args::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) {
      throw std::invalid_argument(it->second);
    }
    return value;
  } catch (const std::exception&) {
    errors_.push_back("--" + name + " expects a number, got '" + it->second +
                      "'");
    return fallback;
  }
}

std::vector<std::string> Args::unknown_flags() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (queried_.count(key) == 0) {
      unknown.push_back("--" + key);
    }
  }
  return unknown;
}

}  // namespace genoc::cli
