/// \file cmd_sim.cpp
/// \brief `genoc sim` — run GeNoC2D on a traffic pattern with the
///        CorrThm/EvacThm/(C-5) audits on, and report latency/throughput.
///        `--instance` runs any registered instance (or ad-hoc spec):
///        torus topologies, turn-model/adaptive routing, store-and-forward
///        switching — all through the same audited pipeline.
#include <iostream>
#include <limits>
#include <optional>

#include "cli/commands.hpp"
#include "cli/json_writer.hpp"
#include "instance/network_instance.hpp"
#include "instance/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc sim [options]\n"
    "  --instance X   simulate a registered instance (see `genoc list`) or\n"
    "                 an ad-hoc spec: \"topology=torus size=8x8\n"
    "                 routing=torus_xy escape=xy\"; the spec carries the\n"
    "                 workload, and the flags below override it\n"
    "  --width N      mesh width (default 4; ignored with --instance)\n"
    "  --height N     mesh height (default 4; ignored with --instance)\n"
    "  --buffers N    buffers per port (default 2; ignored with --instance)\n"
    "  --messages N   message count for randomized patterns (default 64)\n"
    "  --flits N      flits per message (default 4)\n"
    "  --pattern P    uniform | transpose | bit-reversal | hotspot |\n"
    "                 all-to-one | neighbor | permutation | ring\n"
    "                 (default uniform)\n"
    "  --seed N       traffic RNG seed (default 2010)\n"
    "  --json         emit a JSON report on stdout instead of prose\n";

int report(const SimulationReport& report, const std::string& network,
           const std::string& routing_name, const std::string& switching_name,
           const InstanceSpec& spec, bool as_json) {
  const bool ok =
      report.run.evacuated && report.correctness_ok && report.evacuation_ok;
  if (as_json) {
    JsonObject obj;
    obj.add("command", "sim")
        .add("instance", network)
        .add("spec", to_spec_string(spec))
        .add("topology", spec.topology)
        .add("width", static_cast<std::int64_t>(spec.width))
        .add("height", static_cast<std::int64_t>(spec.height))
        .add("buffers_per_port", static_cast<std::uint64_t>(spec.buffers))
        .add("routing", routing_name)
        .add("switching", switching_name)
        .add("pattern", spec.pattern)
        .add("messages", static_cast<std::uint64_t>(report.messages))
        .add("flits_per_message", static_cast<std::uint64_t>(spec.flits))
        .add("seed", spec.seed)
        .add("steps", static_cast<std::uint64_t>(report.run.steps))
        .add("evacuated", report.run.evacuated)
        .add("deadlocked", report.run.deadlocked)
        .add("total_flits", static_cast<std::uint64_t>(report.total_flits))
        .add("throughput_flits_per_step", report.throughput)
        .add("latency_mean", report.latency.mean)
        .add("latency_p50", report.latency.p50)
        .add("latency_p95", report.latency.p95)
        .add("latency_p99", report.latency.p99)
        .add("latency_max", report.latency.max)
        .add("measure_violations",
             static_cast<std::uint64_t>(report.run.measure_violations))
        .add("correctness_ok", report.correctness_ok)
        .add("evacuation_ok", report.evacuation_ok)
        .add("ok", ok);
    std::cout << obj.to_string();
    return ok ? 0 : 1;
  }

  std::cout << "GeNoC2D simulation — " << network << " (" << spec.topology
            << " " << spec.width << "x" << spec.height << ", "
            << routing_name << " routing, " << switching_name
            << " switching, " << spec.buffers << " buffers/port), pattern "
            << spec.pattern << ", " << report.messages << " messages x "
            << spec.flits << " flits (seed " << spec.seed << ")\n\n";
  std::cout << "Simulation: " << report.summary() << "\n";
  std::cout << "Latency:    " << report.latency.to_string() << "\n";
  std::cout << "Audits:     CorrThm "
            << (report.correctness_ok ? "holds" : "VIOLATED") << ", EvacThm "
            << (report.evacuation_ok ? "holds" : "VIOLATED") << ", (C-5) "
            << (report.run.measure_violations == 0 ? "held every step"
                                                   : "VIOLATED")
            << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int cmd_sim(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string instance = args.get("instance", "");
  const auto width =
      static_cast<std::int32_t>(args.get_int_in("width", 4, 2, 512));
  const auto height =
      static_cast<std::int32_t>(args.get_int_in("height", 4, 2, 512));
  const auto buffers =
      static_cast<std::uint32_t>(args.get_int_in("buffers", 2, 1, 64));
  const bool messages_given = args.has("messages");
  const auto messages =
      static_cast<std::uint32_t>(args.get_int_in("messages", 64, 0, 1000000));
  const bool flits_given = args.has("flits");
  const auto flits =
      static_cast<std::uint32_t>(args.get_int_in("flits", 4, 1, 1024));
  const bool pattern_given = args.has("pattern");
  const std::string pattern_name = args.get("pattern", "uniform");
  const bool seed_given = args.has("seed");
  const auto seed = static_cast<std::uint64_t>(args.get_int_in(
      "seed", 2010, 0, std::numeric_limits<std::int64_t>::max()));
  const bool as_json = args.has("json");
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }
  const std::optional<TrafficPattern> pattern =
      parse_traffic_pattern(pattern_name);
  if (!pattern) {
    std::cerr << "genoc sim: unknown pattern '" << pattern_name << "'\n"
              << kUsage;
    return 2;
  }

  InstanceSpec spec;
  if (instance.empty()) {
    // Classic mode: the parametric HERMES mesh, every knob from flags.
    spec.width = width;
    spec.height = height;
    spec.buffers = buffers;
    spec.pattern = traffic_pattern_name(*pattern);
    spec.messages = messages;
    spec.flits = flits;
    spec.seed = seed;
  } else {
    std::string error;
    const std::optional<InstanceSpec> resolved =
        InstanceRegistry::global().resolve(instance, &error);
    if (!resolved) {
      std::cerr << "genoc sim: " << error << "\n";
      return 2;
    }
    spec = *resolved;
    // Workload flags override the spec's baked-in workload when given.
    if (pattern_given) {
      spec.pattern = traffic_pattern_name(*pattern);
    }
    if (messages_given) {
      spec.messages = messages;
    }
    if (flits_given) {
      spec.flits = flits;
    }
    if (seed_given) {
      spec.seed = seed;
    }
    const std::string invalid = validate_spec(spec);
    if (!invalid.empty()) {
      std::cerr << "genoc sim: " << invalid << "\n";
      return 2;
    }
  }
  if (!spec.is_grid()) {
    std::cerr << "genoc sim: the simulator runs the grid families only; "
                 "topology " << spec.topology
              << " is verification-only for now (see ROADMAP)\n";
    return 2;
  }

  const NetworkInstance network(spec);
  const std::vector<TrafficPair> pairs = network.make_traffic();
  const SimulationReport result = network.simulate(pairs);
  // Named presets report their name; ad-hoc and classic runs get a short
  // label (the canonical spec is in the report's "spec" field / header).
  const std::string label = !spec.name.empty() ? spec.name
                            : instance.empty() ? "HERMES"
                                               : "ad-hoc spec";
  return report(result, label, network.routing().name(),
                network.switching().name(), spec, as_json);
}

}  // namespace genoc::cli
