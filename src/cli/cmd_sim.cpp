/// \file cmd_sim.cpp
/// \brief `genoc sim` — run GeNoC2D on a generated traffic pattern with the
///        CorrThm/EvacThm/(C-5) audits on, and report latency/throughput.
#include <iostream>
#include <optional>

#include "cli/commands.hpp"
#include "cli/json_writer.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc sim [options]\n"
    "  --width N      mesh width (default 4)\n"
    "  --height N     mesh height (default 4)\n"
    "  --buffers N    buffers per port (default 2)\n"
    "  --messages N   message count for randomized patterns (default 64)\n"
    "  --flits N      flits per message (default 4)\n"
    "  --pattern P    uniform | transpose | bit-reversal | hotspot |\n"
    "                 all-to-one | neighbor | permutation | ring\n"
    "                 (default uniform)\n"
    "  --seed N       traffic RNG seed (default 2010)\n"
    "  --json         emit a JSON report on stdout instead of prose\n";

std::optional<TrafficPattern> parse_pattern(const std::string& name) {
  if (name == "uniform" || name == "uniform-random") {
    return TrafficPattern::kUniformRandom;
  }
  if (name == "transpose") {
    return TrafficPattern::kTranspose;
  }
  if (name == "bit-reversal" || name == "bitrev") {
    return TrafficPattern::kBitReversal;
  }
  if (name == "hotspot") {
    return TrafficPattern::kHotspot;
  }
  if (name == "all-to-one") {
    return TrafficPattern::kAllToOne;
  }
  if (name == "neighbor") {
    return TrafficPattern::kNeighbor;
  }
  if (name == "permutation") {
    return TrafficPattern::kPermutation;
  }
  if (name == "ring") {
    return TrafficPattern::kRing;
  }
  return std::nullopt;
}

}  // namespace

int cmd_sim(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto width = static_cast<std::int32_t>(args.get_int_in("width", 4, 2, 512));
  const auto height =
      static_cast<std::int32_t>(args.get_int_in("height", 4, 2, 512));
  const auto buffers =
      static_cast<std::size_t>(args.get_int_in("buffers", 2, 1, 64));
  const auto messages =
      static_cast<std::size_t>(args.get_int_in("messages", 64, 0, 1000000));
  const auto flits =
      static_cast<std::uint32_t>(args.get_int_in("flits", 4, 1, 1024));
  const std::string pattern_name = args.get("pattern", "uniform");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2010));
  const bool as_json = args.has("json");
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }
  const std::optional<TrafficPattern> pattern = parse_pattern(pattern_name);
  if (!pattern) {
    std::cerr << "genoc sim: unknown pattern '" << pattern_name << "'\n"
              << kUsage;
    return 2;
  }

  const HermesInstance hermes(width, height, buffers);
  Rng rng(seed);
  const std::vector<TrafficPair> pairs =
      generate_traffic(*pattern, hermes.mesh(), messages, rng);
  SimulationOptions options;
  options.flit_count = flits;
  const SimulationReport report = simulate(hermes, pairs, options);
  const bool ok =
      report.run.evacuated && report.correctness_ok && report.evacuation_ok;

  if (as_json) {
    JsonObject obj;
    obj.add("command", "sim")
        .add("width", static_cast<std::int64_t>(width))
        .add("height", static_cast<std::int64_t>(height))
        .add("buffers_per_port", static_cast<std::uint64_t>(buffers))
        .add("pattern", traffic_pattern_name(*pattern))
        .add("messages", static_cast<std::uint64_t>(report.messages))
        .add("flits_per_message", static_cast<std::uint64_t>(flits))
        .add("seed", static_cast<std::uint64_t>(seed))
        .add("steps", static_cast<std::uint64_t>(report.run.steps))
        .add("evacuated", report.run.evacuated)
        .add("deadlocked", report.run.deadlocked)
        .add("total_flits", static_cast<std::uint64_t>(report.total_flits))
        .add("throughput_flits_per_step", report.throughput)
        .add("latency_mean", report.latency.mean)
        .add("latency_p50", report.latency.p50)
        .add("latency_p95", report.latency.p95)
        .add("latency_p99", report.latency.p99)
        .add("latency_max", report.latency.max)
        .add("measure_violations",
             static_cast<std::uint64_t>(report.run.measure_violations))
        .add("correctness_ok", report.correctness_ok)
        .add("evacuation_ok", report.evacuation_ok)
        .add("ok", ok);
    std::cout << obj.to_string();
    return ok ? 0 : 1;
  }

  std::cout << "GeNoC2D simulation — HERMES " << width << "x" << height
            << " mesh, " << buffers << " buffers/port, pattern "
            << traffic_pattern_name(*pattern) << ", " << pairs.size()
            << " messages x " << flits << " flits (seed " << seed << ")\n\n";
  std::cout << "Simulation: " << report.summary() << "\n";
  std::cout << "Latency:    " << report.latency.to_string() << "\n";
  std::cout << "Audits:     CorrThm "
            << (report.correctness_ok ? "holds" : "VIOLATED") << ", EvacThm "
            << (report.evacuation_ok ? "holds" : "VIOLATED") << ", (C-5) "
            << (report.run.measure_violations == 0 ? "held every step"
                                                   : "VIOLATED")
            << "\n";
  return ok ? 0 : 1;
}

}  // namespace genoc::cli
