/// \file verify_json.hpp
/// \brief JSON rendering of the VerifyPipeline's typed output — verdict
///        rows, per-stage stats, Diagnostics, artifact-cache counters — and
///        the inverse parsers backing the Diagnostic round-trip and the
///        `--baseline` trend report.
///
/// Lives in genoc_cli_support (not the driver) so the test suite covers the
/// exact serialization `genoc verify --json` ships; the schema is versioned
/// by VerifyReport::kSchemaVersion, which cmd_verify stamps at the top
/// level and tools/check_verify_schema.py validates in CI.
#pragma once

#include <optional>
#include <string>

#include "cli/json_reader.hpp"
#include "obs/metrics.hpp"
#include "verify/report.hpp"

namespace genoc::cli {

/// One verdict row: the legacy fields, unchanged names and order (tooling
/// compatibility), plus the typed "stages" and "diagnostics" arrays.
std::string report_json(const genoc::VerifyReport& report);

/// Same row with the static analyzer's pre-screen attached as an
/// "analysis" sub-object (an analyze_report_json row). \p analysis_raw is
/// pre-serialized JSON; empty attaches nothing, so `--no-analyze` rows are
/// byte-identical to the overload above (no schema bump: an added field).
std::string report_json(const genoc::VerifyReport& report,
                        const std::string& analysis_raw);

std::string diagnostic_json(const genoc::Diagnostic& diagnostic);
std::string stage_stats_json(const genoc::StageStats& stats);
std::string cache_stats_json(const genoc::ArtifactCacheStats& stats);

/// The `metrics` section of the schema-v2 report: counters and gauges as
/// name -> value maps, histograms as {count, sum, max, buckets: [{le,
/// count}]} objects. Names are pre-sorted by MetricsRegistry::snapshot().
std::string metrics_json(const genoc::obs::MetricsSnapshot& snapshot);

/// Inverse of diagnostic_json: rebuilds the typed record (stage, severity,
/// code, message, witness in document order). Returns nullopt with a
/// message in *error on a malformed or non-object value.
std::optional<genoc::Diagnostic> diagnostic_from_json(const JsonValue& value,
                                                      std::string* error);

/// Inverse of stage_stats_json (cpu_ms round-trips through json_number's
/// shortest-precision doubles).
std::optional<genoc::StageStats> stage_stats_from_json(const JsonValue& value,
                                                       std::string* error);

}  // namespace genoc::cli
