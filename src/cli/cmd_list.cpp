/// \file cmd_list.cpp
/// \brief `genoc list` — the registered network instances: name, canonical
///        spec string, and what each one demonstrates. `--topologies` lists
///        the topology families the spec grammar can instantiate instead.
#include <iostream>

#include "analyze/rule.hpp"
#include "cli/commands.hpp"
#include "cli/json_writer.hpp"
#include "instance/registry.hpp"
#include "topology/topology.hpp"
#include "util/table.hpp"
#include "verify/check.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc list [options]\n"
    "  --checks      list the registered verify check stages (the names\n"
    "                `genoc verify --stages` accepts) instead of the instances\n"
    "  --rules       list the registered analysis rules (the names\n"
    "                `genoc analyze --rules` accepts) instead of the instances\n"
    "  --topologies  list the registered topology families and their\n"
    "                spec-grammar parameters instead of the instances\n"
    "  --json        emit the listing as JSON instead of the table\n"
    "\n"
    "Any listed name works wherever --instance is accepted; so does an\n"
    "ad-hoc spec like \"topology=torus size=16x16 routing=odd_even\".\n";

int list_topologies(bool as_json) {
  const std::vector<TopologyFamilyInfo>& families = topology_families();

  if (as_json) {
    std::vector<std::string> rows;
    for (const TopologyFamilyInfo& family : families) {
      JsonObject obj;
      obj.add("name", family.name)
          .add("parameters", family.params)
          .add("summary", family.summary);
      rows.push_back(obj.to_string());
    }
    JsonObject report;
    report.add("command", "list")
        .add("count", static_cast<std::uint64_t>(families.size()))
        .add_raw("topologies", json_array(rows));
    std::cout << report.to_string();
    return 0;
  }

  Table table({"Family", "Parameters", "Summary"});
  for (const TopologyFamilyInfo& family : families) {
    table.add_row({family.name, family.params, family.summary});
  }
  std::cout << families.size()
            << " registered topology families (usable as `topology=<name>` "
               "in an instance spec):\n\n"
            << table.render() << "\n";
  return 0;
}

int list_checks(bool as_json) {
  const CheckRegistry& registry = CheckRegistry::global();

  if (as_json) {
    std::vector<std::string> rows;
    for (const Check* check : registry.checks()) {
      JsonObject obj;
      obj.add("name", check->name()).add("description", check->description());
      rows.push_back(obj.to_string());
    }
    JsonObject report;
    report.add("command", "list")
        .add("count", static_cast<std::uint64_t>(registry.checks().size()))
        .add_raw("checks", json_array(rows));
    std::cout << report.to_string();
    return 0;
  }

  Table table({"Stage", "Description"});
  for (const Check* check : registry.checks()) {
    table.add_row({check->name(), check->description()});
  }
  std::cout << registry.checks().size()
            << " registered verify check stages (selectable via `genoc "
               "verify --stages a,b,...`, run in the given order):\n\n"
            << table.render() << "\n";
  return 0;
}

int list_rules(bool as_json) {
  const RuleRegistry& registry = RuleRegistry::global();

  if (as_json) {
    std::vector<std::string> rows;
    for (const AnalysisRule* rule : registry.rules()) {
      JsonObject obj;
      obj.add("name", rule->name()).add("description", rule->description());
      rows.push_back(obj.to_string());
    }
    JsonObject report;
    report.add("command", "list")
        .add("count", static_cast<std::uint64_t>(registry.rules().size()))
        .add_raw("rules", json_array(rows));
    std::cout << report.to_string();
    return 0;
  }

  Table table({"Rule", "Description"});
  for (const AnalysisRule* rule : registry.rules()) {
    table.add_row({rule->name(), rule->description()});
  }
  std::cout << registry.rules().size()
            << " registered analysis rules (selectable via `genoc analyze "
               "--rules a,b,...`, run in the given order):\n\n"
            << table.render() << "\n";
  return 0;
}

}  // namespace

int cmd_list(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const bool as_json = args.has("json");
  const bool checks = args.has("checks");
  const bool rules = args.has("rules");
  const bool topologies = args.has("topologies");
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }
  if (checks) {
    return list_checks(as_json);
  }
  if (rules) {
    return list_rules(as_json);
  }
  if (topologies) {
    return list_topologies(as_json);
  }
  const InstanceRegistry& registry = InstanceRegistry::global();

  if (as_json) {
    std::vector<std::string> rows;
    for (const InstanceSpec& spec : registry.presets()) {
      JsonObject obj;
      obj.add("name", spec.name)
          .add("summary", spec.summary)
          .add("spec", to_spec_string(spec))
          .add("topology", spec.topology)
          .add("heavy", registry.heavy(spec.name));
      rows.push_back(obj.to_string());
    }
    JsonObject report;
    report.add("command", "list")
        .add("count", static_cast<std::uint64_t>(registry.presets().size()))
        .add_raw("instances", json_array(rows));
    std::cout << report.to_string();
    return 0;
  }

  Table table({"Instance", "Family", "Spec", "Summary"});
  for (const InstanceSpec& spec : registry.presets()) {
    table.add_row({spec.name + (registry.heavy(spec.name) ? " (heavy)" : ""),
                   spec.topology, to_spec_string(spec), spec.summary});
  }
  std::cout << registry.presets().size()
            << " registered instances (usable as `--instance <name>`; "
               "key=value specs also accepted):\n\n"
            << table.render() << "\n";
  return 0;
}

}  // namespace genoc::cli
