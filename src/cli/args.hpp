/// \file args.hpp
/// \brief Tiny GNU-style flag parser for the `genoc` driver: `--key value`,
///        `--key=value`, and bare boolean `--flag` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace genoc::cli {

/// Parsed command-line options for one subcommand invocation.
///
/// Construction never fails; errors (unknown flags, bad numbers) surface
/// through unknown_flags() / the typed getters so each subcommand can print
/// its own usage string alongside the complaint.
class Args {
 public:
  /// Parses argv[begin..argc). Tokens starting with "--" become flags; a
  /// flag's value is either its "=..." suffix or the following token (when
  /// that token is not itself a flag). Everything else is a positional.
  Args(int argc, char** argv, int begin);

  /// True iff \p name was given (with or without a value).
  bool has(const std::string& name) const;

  /// String value of \p name, or \p fallback when absent.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Integer value of \p name, or \p fallback when absent. A malformed
  /// number records an error retrievable via errors().
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Like get_int, but additionally records an error when the value falls
  /// outside [lo, hi] — the guard that keeps `--messages -5` or a 10^10-node
  /// mesh from reaching the library as a wrapped-around std::size_t.
  std::int64_t get_int_in(const std::string& name, std::int64_t fallback,
                          std::int64_t lo, std::int64_t hi) const;

  /// Double value of \p name, or \p fallback when absent.
  double get_double(const std::string& name, double fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Flags that were provided but never queried by the subcommand; call
  /// after all get*/has calls to reject typos like `--widht`.
  std::vector<std::string> unknown_flags() const;

  /// Parse errors accumulated by the typed getters.
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positionals_;
  mutable std::vector<std::string> errors_;
};

}  // namespace genoc::cli
