/// \file cmd_verify.cpp
/// \brief `genoc verify` — the paper's verification pipeline (Fig. 2).
///
/// Three modes:
///   (default)        the classic parametric-HERMES obligation suite with
///                    the Table-I-shaped effort report;
///   --instance X     one registered instance (or ad-hoc key=value spec)
///                    through the generic Theorem-1 / escape-lane pipeline;
///   --all            every registered instance, verified on the shared
///                    BatchRunner pool, as a per-instance matrix report.
#include <iostream>
#include <limits>
#include <optional>

#include "cli/commands.hpp"
#include "cli/json_writer.hpp"
#include "core/obligations.hpp"
#include "instance/batch_runner.hpp"
#include "instance/registry.hpp"
#include "util/table.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc verify [options]\n"
    "Classic HERMES mode (no --instance/--all):\n"
    "  --width N      mesh width (default 4)\n"
    "  --height N     mesh height (default 4)\n"
    "  --buffers N    buffers per port (default 2)\n"
    "  --workloads N  simulated workloads for the Swh/CorrThm rows (default 3)\n"
    "  --messages N   messages per workload (default 24)\n"
    "  --seed N       traffic RNG seed (default 2010)\n"
    "Instance mode:\n"
    "  --instance X   verify a registered instance (see `genoc list`) or an\n"
    "                 ad-hoc spec: \"topology=torus size=16x16 routing=odd_even\"\n"
    "  --all          verify every registered instance (matrix report)\n"
    "  --heavy        include presets tagged heavy in --all (none today:\n"
    "                 the sharded escape/trim stages retired the jail)\n"
    "  --threads N    BatchRunner threads (default 0 = hardware concurrency)\n"
    "  --sequential   disable the parallel BatchRunner\n"
    "  --constraints  additionally discharge (C-1)/(C-2) per instance\n"
    "  --generic      build graphs with the quadratic oracle builder\n"
    "Common:\n"
    "  --json         emit a JSON report on stdout instead of the table\n";

std::string paper_column(const PaperEffortRow& ref) {
  return std::to_string(ref.lines) + "/" + std::to_string(ref.theorems) + "/" +
         std::to_string(ref.cpu_minutes);
}

std::string verdict_word(const InstanceVerdict& verdict) {
  if (verdict.deadlock_free) {
    return "DEADLOCK-FREE";
  }
  return verdict.constraints_ok ? "DEADLOCK-PRONE" : "CONSTRAINT-VIOLATED";
}

std::string verdict_json(const InstanceVerdict& verdict) {
  JsonObject obj;
  obj.add("instance", verdict.instance)
      .add("spec", verdict.spec)
      .add("topology", verdict.topology)
      .add("routing", verdict.routing)
      .add("switching", verdict.switching)
      .add("nodes", static_cast<std::uint64_t>(verdict.nodes))
      .add("ports", static_cast<std::uint64_t>(verdict.ports))
      .add("dep_edges", static_cast<std::uint64_t>(verdict.edges))
      .add("deterministic", verdict.deterministic)
      .add("dep_acyclic", verdict.dep_acyclic)
      .add("method", verdict.method)
      .add("deadlock_free", verdict.deadlock_free)
      .add("constraints_ok", verdict.constraints_ok)
      .add("checks", verdict.checks)
      .add("cpu_ms", verdict.cpu_ms)
      .add("note", verdict.note);
  return obj.to_string();
}

int report_instances(const std::vector<InstanceVerdict>& verdicts,
                     bool as_json, const std::string& mode,
                     std::size_t threads) {
  bool all_free = true;
  for (const InstanceVerdict& verdict : verdicts) {
    all_free = all_free && verdict.deadlock_free && verdict.constraints_ok;
  }

  if (as_json) {
    std::vector<std::string> rows;
    rows.reserve(verdicts.size());
    for (const InstanceVerdict& verdict : verdicts) {
      rows.push_back(verdict_json(verdict));
    }
    JsonObject report;
    report.add("command", "verify")
        .add("mode", mode)
        .add("threads", static_cast<std::uint64_t>(threads))
        .add("instances_total", static_cast<std::uint64_t>(verdicts.size()))
        .add("all_deadlock_free", all_free)
        .add_raw("instances", json_array(rows));
    std::cout << report.to_string();
    return all_free ? 0 : 1;
  }

  Table table({"Instance", "Topology", "Routing", "Switching", "Ports",
               "Dep edges", "Method", "Verdict", "CPU ms"});
  for (const InstanceVerdict& verdict : verdicts) {
    table.add_row({verdict.instance, verdict.topology, verdict.routing,
                   verdict.switching, format_count(verdict.ports),
                   format_count(verdict.edges), verdict.method,
                   verdict_word(verdict), format_double(verdict.cpu_ms, 2)});
  }
  std::cout << "Per-instance deadlock-freedom verification (" << threads
            << " thread" << (threads == 1 ? "" : "s") << "):\n\n"
            << table.render() << "\n";
  for (const InstanceVerdict& verdict : verdicts) {
    std::cout << "  " << verdict.instance << ": " << verdict.note << "\n";
  }
  std::cout << "\n"
            << (all_free ? "Every instance verified deadlock-free."
                         : "INSTANCE NOT VERIFIED — see the rows above.")
            << "\n";
  return all_free ? 0 : 1;
}

int run_instance_mode(const std::string& instance, bool all, bool heavy,
                      bool sequential, std::size_t threads, bool constraints,
                      bool generic, bool as_json) {
  const InstanceRegistry& registry = InstanceRegistry::global();
  std::vector<InstanceSpec> specs;
  if (all) {
    specs = heavy ? registry.presets() : registry.sweep_presets();
  } else {
    std::string error;
    const std::optional<InstanceSpec> spec = registry.resolve(instance, &error);
    if (!spec) {
      std::cerr << "genoc verify: " << error << "\n";
      return 2;
    }
    specs.push_back(*spec);
  }

  InstanceVerifyOptions options;
  options.check_constraints = constraints;
  options.generic_builder = generic;
  std::optional<BatchRunner> runner;
  if (!sequential) {
    runner.emplace(threads);
  }
  const std::vector<InstanceVerdict> verdicts =
      verify_instances(specs, runner ? &*runner : nullptr, options);
  return report_instances(verdicts, as_json, all ? "all" : "instance",
                          runner ? runner->thread_count() : 1);
}

int run_hermes_mode(std::int32_t width, std::int32_t height,
                    std::size_t buffers, const ObligationOptions& options,
                    bool as_json) {
  const HermesInstance hermes(width, height, buffers);
  const ObligationSuite suite = run_hermes_obligations(hermes, options);
  const ObligationRow overall = suite.overall();

  if (as_json) {
    std::vector<std::string> rows;
    for (const ObligationRow& row : suite.rows) {
      JsonObject obj;
      obj.add("label", row.label)
          .add("checks", static_cast<std::uint64_t>(row.checks))
          .add("properties", static_cast<std::uint64_t>(row.properties))
          .add("cpu_ms", row.cpu_ms)
          .add("satisfied", row.satisfied)
          .add("note", row.note);
      rows.push_back(obj.to_string());
    }
    JsonObject report;
    report.add("command", "verify")
        .add("mode", "hermes")
        .add("width", static_cast<std::int64_t>(width))
        .add("height", static_cast<std::int64_t>(height))
        .add("buffers_per_port", static_cast<std::uint64_t>(buffers))
        .add("all_satisfied", suite.all_satisfied())
        .add("total_checks", static_cast<std::uint64_t>(overall.checks))
        .add("total_cpu_ms", overall.cpu_ms)
        .add_raw("rows", json_array(rows));
    std::cout << report.to_string();
    return suite.all_satisfied() ? 0 : 1;
  }

  std::cout << "Discharging the HERMES proof obligations on a " << width << "x"
            << height << " mesh (" << buffers << " buffers/port)\n\n";
  Table table({"Obligation", "Checks", "Props", "CPU ms", "Status",
               "Paper: Lines/Thms/CPUmin"});
  const auto& paper = paper_table1();
  for (std::size_t i = 0; i < suite.rows.size(); ++i) {
    const ObligationRow& row = suite.rows[i];
    table.add_row({row.label, format_count(row.checks),
                   std::to_string(row.properties), format_double(row.cpu_ms, 2),
                   row.satisfied ? "DISCHARGED" : "VIOLATED",
                   i < paper.size() - 1 ? paper_column(paper[i]) : "-"});
  }
  table.add_separator();
  table.add_row({overall.label, format_count(overall.checks),
                 std::to_string(overall.properties),
                 format_double(overall.cpu_ms, 2),
                 overall.satisfied ? "DISCHARGED" : "VIOLATED",
                 paper_column(paper.back())});
  std::cout << table.render() << "\n";
  for (const ObligationRow& row : suite.rows) {
    std::cout << "  " << row.label << ": " << row.note << "\n";
  }
  std::cout << "\n"
            << (suite.all_satisfied()
                    ? "All obligations discharged: this instance satisfies "
                      "CorrThm, DeadThm and EvacThm."
                    : "OBLIGATION VIOLATED — see the rows above.")
            << "\n";
  return suite.all_satisfied() ? 0 : 1;
}

}  // namespace

int cmd_verify(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto width =
      static_cast<std::int32_t>(args.get_int_in("width", 4, 2, 512));
  const auto height =
      static_cast<std::int32_t>(args.get_int_in("height", 4, 2, 512));
  const auto buffers =
      static_cast<std::size_t>(args.get_int_in("buffers", 2, 1, 64));
  ObligationOptions options;
  options.workloads =
      static_cast<std::size_t>(args.get_int_in("workloads", 3, 1, 1000));
  options.messages_per_workload =
      static_cast<std::size_t>(args.get_int_in("messages", 24, 1, 100000));
  // Range-checked like every integer flag: a negative or garbage seed must
  // exit 2, not wrap around into a silently different workload.
  options.seed = static_cast<std::uint64_t>(args.get_int_in(
      "seed", 2010, 0, std::numeric_limits<std::int64_t>::max()));
  const std::string instance = args.get("instance", "");
  const bool all = args.has("all");
  const auto threads =
      static_cast<std::size_t>(args.get_int_in("threads", 0, 0, 256));
  const bool sequential = args.has("sequential");
  const bool constraints = args.has("constraints");
  const bool heavy = args.has("heavy");
  const bool generic = args.has("generic");
  const bool as_json = args.has("json");
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }
  // Flags are mode-specific; a flag from the other mode parses fine but
  // would silently do nothing, so call it out.
  const bool instance_mode = all || !instance.empty();
  const char* classic_flags[] = {"width",   "height",    "buffers",
                                 "workloads", "messages", "seed"};
  const char* instance_flags[] = {"threads", "sequential", "constraints",
                                  "heavy", "generic"};
  if (instance_mode) {
    for (const char* flag : classic_flags) {
      if (args.has(flag)) {
        std::cerr << "genoc verify: --" << flag
                  << " only applies to the classic HERMES mode and is "
                     "ignored with --instance/--all (instance dimensions "
                     "come from the spec)\n";
      }
    }
  } else {
    for (const char* flag : instance_flags) {
      if (args.has(flag)) {
        std::cerr << "genoc verify: --" << flag
                  << " only applies with --instance/--all and is ignored "
                     "in the classic HERMES mode\n";
      }
    }
  }
  if (instance_mode) {
    return run_instance_mode(instance, all, heavy, sequential, threads,
                             constraints, generic, as_json);
  }
  return run_hermes_mode(width, height, buffers, options, as_json);
}

}  // namespace genoc::cli
