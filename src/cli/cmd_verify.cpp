/// \file cmd_verify.cpp
/// \brief `genoc verify` — the paper's full verification pipeline (Fig. 2)
///        on a parametric HERMES instance: discharge every proof obligation
///        and print the per-row effort report next to the paper's Table I.
#include <iostream>

#include "cli/commands.hpp"
#include "cli/json_writer.hpp"
#include "core/obligations.hpp"
#include "util/table.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc verify [options]\n"
    "  --width N      mesh width (default 4)\n"
    "  --height N     mesh height (default 4)\n"
    "  --buffers N    buffers per port (default 2)\n"
    "  --workloads N  simulated workloads for the Swh/CorrThm rows (default 3)\n"
    "  --messages N   messages per workload (default 24)\n"
    "  --seed N       traffic RNG seed (default 2010)\n"
    "  --json         emit a JSON report on stdout instead of the table\n";

std::string paper_column(const PaperEffortRow& ref) {
  return std::to_string(ref.lines) + "/" + std::to_string(ref.theorems) + "/" +
         std::to_string(ref.cpu_minutes);
}

}  // namespace

int cmd_verify(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto width =
      static_cast<std::int32_t>(args.get_int_in("width", 4, 2, 512));
  const auto height =
      static_cast<std::int32_t>(args.get_int_in("height", 4, 2, 512));
  const auto buffers =
      static_cast<std::size_t>(args.get_int_in("buffers", 2, 1, 64));
  ObligationOptions options;
  options.workloads =
      static_cast<std::size_t>(args.get_int_in("workloads", 3, 1, 1000));
  options.messages_per_workload =
      static_cast<std::size_t>(args.get_int_in("messages", 24, 1, 100000));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 2010));
  const bool as_json = args.has("json");
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }
  const HermesInstance hermes(width, height, buffers);
  const ObligationSuite suite = run_hermes_obligations(hermes, options);
  const ObligationRow overall = suite.overall();

  if (as_json) {
    std::vector<std::string> rows;
    for (const ObligationRow& row : suite.rows) {
      JsonObject obj;
      obj.add("label", row.label)
          .add("checks", static_cast<std::uint64_t>(row.checks))
          .add("properties", static_cast<std::uint64_t>(row.properties))
          .add("cpu_ms", row.cpu_ms)
          .add("satisfied", row.satisfied)
          .add("note", row.note);
      rows.push_back(obj.to_string());
    }
    JsonObject report;
    report.add("command", "verify")
        .add("width", static_cast<std::int64_t>(width))
        .add("height", static_cast<std::int64_t>(height))
        .add("buffers_per_port", static_cast<std::uint64_t>(buffers))
        .add("all_satisfied", suite.all_satisfied())
        .add("total_checks", static_cast<std::uint64_t>(overall.checks))
        .add("total_cpu_ms", overall.cpu_ms)
        .add_raw("rows", json_array(rows));
    std::cout << report.to_string();
    return suite.all_satisfied() ? 0 : 1;
  }

  std::cout << "Discharging the HERMES proof obligations on a " << width << "x"
            << height << " mesh (" << buffers << " buffers/port)\n\n";
  Table table({"Obligation", "Checks", "Props", "CPU ms", "Status",
               "Paper: Lines/Thms/CPUmin"});
  const auto& paper = paper_table1();
  for (std::size_t i = 0; i < suite.rows.size(); ++i) {
    const ObligationRow& row = suite.rows[i];
    table.add_row({row.label, format_count(row.checks),
                   std::to_string(row.properties), format_double(row.cpu_ms, 2),
                   row.satisfied ? "DISCHARGED" : "VIOLATED",
                   i < paper.size() - 1 ? paper_column(paper[i]) : "-"});
  }
  table.add_separator();
  table.add_row({overall.label, format_count(overall.checks),
                 std::to_string(overall.properties),
                 format_double(overall.cpu_ms, 2),
                 overall.satisfied ? "DISCHARGED" : "VIOLATED",
                 paper_column(paper.back())});
  std::cout << table.render() << "\n";
  for (const ObligationRow& row : suite.rows) {
    std::cout << "  " << row.label << ": " << row.note << "\n";
  }
  std::cout << "\n"
            << (suite.all_satisfied()
                    ? "All obligations discharged: this instance satisfies "
                      "CorrThm, DeadThm and EvacThm."
                    : "OBLIGATION VIOLATED — see the rows above.")
            << "\n";
  return suite.all_satisfied() ? 0 : 1;
}

}  // namespace genoc::cli
