/// \file cmd_verify.cpp
/// \brief `genoc verify` — the paper's verification pipeline (Fig. 2).
///
/// Three modes:
///   (default)        the classic parametric-HERMES obligation suite with
///                    the Table-I-shaped effort report;
///   --instance X     one registered instance (or ad-hoc key=value spec)
///                    through the VerifyPipeline (Theorem-1 / escape-lane
///                    stages over the shared artifact cache);
///   --all            every registered instance, verified on the shared
///                    BatchRunner pool with batch-wide artifact reuse, as a
///                    per-instance matrix report.
///
/// Instance-mode JSON reports are schema-versioned (schema_version) and
/// carry the pipeline's typed output: per-stage stats, Diagnostics,
/// artifact-cache counters and the process MetricsRegistry snapshot.
/// `--baseline prev.json` appends a trend section comparing verdicts and
/// wall_ms against a previous run's artifact (v1 or v2) and fails (exit 1)
/// on any verdict regression. `--trace F` records a Chrome trace-event
/// span trace of the whole sweep — one merged file even under --all.
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "cli/analyze_json.hpp"
#include "cli/commands.hpp"
#include "cli/json_reader.hpp"
#include "cli/json_writer.hpp"
#include "cli/verify_json.hpp"
#include "core/obligations.hpp"
#include "instance/batch_runner.hpp"
#include "instance/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"
#include "verify/pipeline.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kUsage =
    "Usage: genoc verify [options]\n"
    "Classic HERMES mode (no --instance/--all):\n"
    "  --width N      mesh width (default 4)\n"
    "  --height N     mesh height (default 4)\n"
    "  --buffers N    buffers per port (default 2)\n"
    "  --workloads N  simulated workloads for the Swh/CorrThm rows (default 3)\n"
    "  --messages N   messages per workload (default 24)\n"
    "  --seed N       traffic RNG seed (default 2010)\n"
    "Instance mode:\n"
    "  --instance X   verify a registered instance (see `genoc list`) or an\n"
    "                 ad-hoc spec: \"topology=torus size=16x16 routing=odd_even\"\n"
    "  --all          verify every registered instance (matrix report)\n"
    "  --heavy        include presets tagged heavy in --all (none today:\n"
    "                 the sharded escape/trim stages retired the jail)\n"
    "  --threads N    BatchRunner threads (default 0 = hardware concurrency)\n"
    "  --sequential   disable the parallel BatchRunner\n"
    "  --constraints  additionally discharge (C-1)/(C-2) per instance\n"
    "  --generic      build graphs with the quadratic oracle builder\n"
    "  --stages A,B   run only the named check stages, in order (see\n"
    "                 `genoc list --checks`); naming 'constraints' implies\n"
    "                 --constraints; without a deciding stage the verdict\n"
    "                 is reported as 'undecided' (exit 1)\n"
    "  --baseline F   compare verdicts/wall_ms against a previous\n"
    "                 `verify ... --json` artifact F (schema v1 or v2);\n"
    "                 any verdict regression fails the run (exit 1)\n"
    "  --trace F      record a Chrome trace-event span trace of the verify\n"
    "                 sweep to F (default genoc.trace.json) — load it in\n"
    "                 Perfetto or chrome://tracing; --all merges the whole\n"
    "                 sweep into the one file\n"
    "  --no-analyze   skip the static-analyzer pre-screen (the cheap\n"
    "                 `genoc analyze` rules run per instance by default and\n"
    "                 attach their diagnostics to the report)\n"
    "Common:\n"
    "  --json         emit a JSON report on stdout instead of the table\n";

/// json_array() takes pre-serialized elements; this wraps raw strings.
std::string json_string_array(const std::vector<std::string>& strings) {
  std::vector<std::string> elements;
  elements.reserve(strings.size());
  for (const std::string& s : strings) {
    elements.push_back("\"" + json_escape(s) + "\"");
  }
  return json_array(elements);
}

std::string paper_column(const PaperEffortRow& ref) {
  return std::to_string(ref.lines) + "/" + std::to_string(ref.theorems) + "/" +
         std::to_string(ref.cpu_minutes);
}

std::string verdict_word(const InstanceVerdict& verdict) {
  if (verdict.deadlock_free) {
    return "DEADLOCK-FREE";
  }
  if (verdict.method == "undecided") {
    return "UNDECIDED";
  }
  if (!verdict.constraints_ok) {
    return "CONSTRAINT-VIOLATED";
  }
  // Negative fixtures (expect=deadlock) REGISTER the deadlock: finding the
  // cycle is the pass, so the row says so instead of looking like a failure.
  return verdict.expected_deadlock_free ? "DEADLOCK-PRONE"
                                        : "DEADLOCK-PRONE (expected)";
}

/// One baseline row parsed out of a previous run's JSON artifact.
struct BaselineRow {
  bool deadlock_free = false;
  /// Artifacts predating the expectation field carry only positive
  /// fixtures, so defaulting to "expected free" keeps them comparable.
  bool expected_deadlock_free = true;
  bool constraints_ok = true;
  /// Wall-clock ms. Schema-v1 artifacts named this figure cpu_ms (the old
  /// field held steady_clock time); load_baseline maps it over.
  double wall_ms = 0.0;

  bool as_expected() const {
    return deadlock_free == expected_deadlock_free;
  }
};

/// The verdict trend against a previous artifact.
struct BaselineComparison {
  std::string file;
  std::size_t compared = 0;
  std::vector<std::string> regressions;   ///< verdict went free -> not free
  std::vector<std::string> improvements;  ///< verdict went not free -> free
  std::vector<std::string> added;         ///< not in the baseline
  std::vector<std::string> removed;       ///< in the baseline, not in this run
  double wall_ms_before = 0.0;
  double wall_ms_now = 0.0;
  std::vector<std::string> rows_json;     ///< per-instance trend rows

  /// The documented failure condition: a verdict that regressed. Instances
  /// merely absent from this run (comparing a single-instance run against
  /// an --all artifact) are reported as `removed` but do not fail it.
  bool failed() const { return !regressions.empty(); }
};

/// Loads and validates a previous `verify --json` artifact. Returns nullopt
/// with a complaint on unreadable files, malformed JSON, a schema_version
/// this build does not speak, or a pipeline configuration (stage selection,
/// --constraints) differing from this run's — comparing a partial-pipeline
/// artifact against a full one would flag every instance as a spurious
/// regression.
std::optional<std::map<std::string, BaselineRow>> load_baseline(
    const std::string& path, const std::vector<std::string>& stage_names,
    bool run_constraints, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read baseline file '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  const std::optional<JsonValue> doc =
      JsonValue::parse(buffer.str(), &parse_error);
  if (!doc || !doc->is_object()) {
    *error = "baseline '" + path + "' is not valid JSON" +
             (parse_error.empty() ? "" : ": " + parse_error);
    return std::nullopt;
  }
  // v1 artifacts stay comparable: the verdict fields are identical and the
  // old cpu_ms column WAS wall-clock time, so it maps onto wall_ms below.
  const std::optional<double> schema = doc->get_number("schema_version");
  const std::int64_t schema_version =
      schema ? static_cast<std::int64_t>(*schema) : -1;
  if (schema_version != 1 && schema_version != VerifyReport::kSchemaVersion) {
    *error = "baseline '" + path + "' has schema_version " +
             (schema ? std::to_string(schema_version)
                     : std::string("<missing>")) +
             "; this build speaks 1 and " +
             std::to_string(VerifyReport::kSchemaVersion);
    return std::nullopt;
  }
  const JsonValue* stages = doc->find("stages");
  std::vector<std::string> baseline_stages;
  if (stages != nullptr && stages->is_array()) {
    for (const JsonValue& name : stages->as_array()) {
      if (name.is_string()) {
        baseline_stages.push_back(name.as_string());
      }
    }
  }
  if (baseline_stages != stage_names) {
    *error = "baseline '" + path +
             "' was produced by a different stage selection";
    for (const std::string& name : baseline_stages) {
      *error += " " + name;
    }
    *error += " — verdicts are not comparable across pipelines (rerun the "
              "baseline with the same --stages)";
    return std::nullopt;
  }
  // Same guard for --constraints: the stage is always listed but self-skips
  // without the opt-in, so the stage list alone cannot tell the runs apart.
  if (doc->get_bool("constraints").value_or(false) != run_constraints) {
    *error = "baseline '" + path + "' was produced with" +
             (run_constraints ? "out" : "") +
             " --constraints and this run " +
             (run_constraints ? "discharges" : "skips") +
             " them — verdicts are not comparable (rerun the baseline with "
             "the same options)";
    return std::nullopt;
  }
  const JsonValue* instances = doc->find("instances");
  if (instances == nullptr || !instances->is_array()) {
    *error = "baseline '" + path + "' has no \"instances\" array";
    return std::nullopt;
  }
  std::map<std::string, BaselineRow> rows;
  for (const JsonValue& row : instances->as_array()) {
    if (!row.is_object()) {
      continue;
    }
    const std::optional<std::string> name = row.get_string("instance");
    const std::optional<bool> free = row.get_bool("deadlock_free");
    if (!name || !free) {
      *error = "baseline '" + path +
               "' row missing instance/deadlock_free fields";
      return std::nullopt;
    }
    BaselineRow entry;
    entry.deadlock_free = *free;
    entry.expected_deadlock_free =
        row.get_bool("expected_deadlock_free").value_or(true);
    entry.constraints_ok = row.get_bool("constraints_ok").value_or(true);
    // v2 rows carry wall_ms; in v1 rows the cpu_ms field held wall time.
    entry.wall_ms = row.get_number("wall_ms")
                        .value_or(row.get_number("cpu_ms").value_or(0.0));
    rows[*name] = entry;
  }
  return rows;
}

BaselineComparison compare_against_baseline(
    const std::vector<VerifyReport>& reports,
    const std::map<std::string, BaselineRow>& baseline,
    const std::string& file) {
  BaselineComparison trend;
  trend.file = file;
  std::map<std::string, bool> seen;
  for (const VerifyReport& report : reports) {
    const InstanceVerdict& verdict = report.verdict;
    const auto it = baseline.find(verdict.instance);
    if (it == baseline.end()) {
      trend.added.push_back(verdict.instance);
      continue;
    }
    seen[verdict.instance] = true;
    ++trend.compared;
    const BaselineRow& before = it->second;
    // "ok" means the verdict matches the registered expectation: a negative
    // fixture regressing is it silently becoming deadlock-free.
    const bool was_ok = before.as_expected() && before.constraints_ok;
    const bool now_ok = verdict.as_expected() && verdict.constraints_ok;
    if (was_ok && !now_ok) {
      trend.regressions.push_back(verdict.instance);
    } else if (!was_ok && now_ok) {
      trend.improvements.push_back(verdict.instance);
    }
    trend.wall_ms_before += before.wall_ms;
    trend.wall_ms_now += verdict.wall_ms;
    JsonObject row;
    row.add("instance", verdict.instance)
        .add("deadlock_free_before", before.deadlock_free)
        .add("deadlock_free_now", verdict.deadlock_free)
        .add("constraints_ok_before", before.constraints_ok)
        .add("constraints_ok_now", verdict.constraints_ok)
        .add("wall_ms_before", before.wall_ms)
        .add("wall_ms_now", verdict.wall_ms)
        .add("wall_ms_delta", verdict.wall_ms - before.wall_ms);
    trend.rows_json.push_back(row.to_string());
  }
  for (const auto& [name, row] : baseline) {
    if (!seen.count(name)) {
      trend.removed.push_back(name);
    }
  }
  return trend;
}

std::string baseline_json(const BaselineComparison& trend) {
  JsonObject obj;
  obj.add("file", trend.file)
      .add("instances_compared", static_cast<std::uint64_t>(trend.compared))
      .add("verdict_regression", trend.failed())
      .add_raw("regressions", json_string_array(trend.regressions))
      .add_raw("improvements", json_string_array(trend.improvements))
      .add_raw("added", json_string_array(trend.added))
      .add_raw("removed", json_string_array(trend.removed))
      .add("wall_ms_before", trend.wall_ms_before)
      .add("wall_ms_now", trend.wall_ms_now)
      .add("wall_ms_delta", trend.wall_ms_now - trend.wall_ms_before)
      .add_raw("rows", json_array(trend.rows_json));
  return obj.to_string();
}

void print_baseline_table(const BaselineComparison& trend) {
  std::cout << "Trend vs baseline " << trend.file << ": " << trend.compared
            << " instances compared, " << trend.regressions.size()
            << " verdict regressions, " << trend.improvements.size()
            << " improvements, wall " << format_double(trend.wall_ms_before, 1)
            << " -> " << format_double(trend.wall_ms_now, 1) << " ms\n";
  for (const std::string& name : trend.regressions) {
    std::cout << "  REGRESSION: " << name
              << " was verified in the baseline and is not anymore\n";
  }
  for (const std::string& name : trend.removed) {
    std::cout << "  not compared: " << name
              << " is in the baseline but not in this run\n";
  }
  for (const std::string& name : trend.added) {
    std::cout << "  new instance: " << name << " (not in the baseline)\n";
  }
  std::cout << "\n";
}

int report_instances(const std::vector<VerifyReport>& reports,
                     const VerifyPipeline& pipeline, bool constraints,
                     const ArtifactCacheStats& cache,
                     const std::vector<AnalyzeReport>& analyses, bool as_json,
                     const std::string& mode, std::size_t threads,
                     const std::optional<BaselineComparison>& trend) {
  bool all_free = true;
  bool all_expected = true;
  std::size_t expected_prone = 0;
  for (const VerifyReport& report : reports) {
    all_free = all_free && report.verdict.deadlock_free &&
               report.verdict.constraints_ok;
    all_expected = all_expected && report.verdict.as_expected() &&
                   report.verdict.constraints_ok;
    if (!report.verdict.expected_deadlock_free) {
      ++expected_prone;
    }
  }
  const bool trend_failed = trend.has_value() && trend->failed();

  if (as_json) {
    std::vector<std::string> rows;
    rows.reserve(reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
      // Pre-screen rows align with reports by construction (both follow
      // the resolved spec order); attach when the analyzer ran.
      rows.push_back(report_json(
          reports[i], i < analyses.size()
                          ? analyze_report_json(analyses[i])
                          : std::string()));
    }
    JsonObject report;
    report.add("command", "verify")
        .add("schema_version", VerifyReport::kSchemaVersion)
        .add("mode", mode)
        .add("threads", static_cast<std::uint64_t>(threads))
        .add_raw("stages", json_string_array(pipeline.stage_names()))
        .add("constraints", constraints)
        .add("instances_total", static_cast<std::uint64_t>(reports.size()))
        .add("analysis_prescreen", !analyses.empty())
        .add("all_deadlock_free", all_free)
        .add("all_as_expected", all_expected)
        .add_raw("cache", cache_stats_json(cache))
        .add_raw("metrics",
                 metrics_json(obs::MetricsRegistry::global().snapshot()))
        .add_raw("instances", json_array(rows));
    if (trend.has_value()) {
      report.add_raw("baseline", baseline_json(*trend));
    }
    std::cout << report.to_string();
    return all_expected && !trend_failed ? 0 : 1;
  }

  Table table({"Instance", "Topology", "Routing", "Switching", "Ports",
               "Dep edges", "Method", "Verdict", "Wall ms"});
  for (const VerifyReport& report : reports) {
    const InstanceVerdict& verdict = report.verdict;
    table.add_row({verdict.instance, verdict.topology, verdict.routing,
                   verdict.switching, format_count(verdict.ports),
                   format_count(verdict.edges), verdict.method,
                   verdict_word(verdict), format_double(verdict.wall_ms, 2)});
  }
  std::cout << "Per-instance deadlock-freedom verification (" << threads
            << " thread" << (threads == 1 ? "" : "s") << ", stages: ";
  const std::vector<std::string> names = pipeline.stage_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::cout << (i == 0 ? "" : ",") << names[i];
  }
  std::cout << "):\n\n" << table.render() << "\n";
  for (const VerifyReport& report : reports) {
    std::cout << "  " << report.verdict.instance << ": "
              << report.verdict.note << "\n";
  }
  // Misses are the meaningful sharing metric (one compute per distinct
  // context); raw hit counts also include intra-pipeline re-reads.
  std::cout << "  artifact cache: " << cache.contexts.misses
            << " distinct contexts for " << reports.size() << " instances — "
            << cache.dep_graph.misses << " graph builds, "
            << cache.primed.misses << " closures primed\n";
  if (!analyses.empty()) {
    std::size_t dirty = 0;
    std::uint64_t findings = 0;
    for (const AnalyzeReport& analysis : analyses) {
      dirty += analysis.clean() ? 0 : 1;
      findings += analysis.findings();
    }
    std::cout << "  analyzer pre-screen (" << Analyzer::cheap().rule_names().size()
              << " cheap rules): " << analyses.size() - dirty << "/"
              << analyses.size() << " instances clean";
    if (dirty != 0) {
      std::cout << ", " << findings << " findings:";
    }
    std::cout << "\n";
    for (const AnalyzeReport& analysis : analyses) {
      for (const Diagnostic& diagnostic : analysis.diagnostics) {
        if (diagnostic.severity == Severity::kInfo) {
          continue;
        }
        std::cout << "    " << analysis.instance << ": ["
                  << severity_name(diagnostic.severity) << "/"
                  << diagnostic.code << "] " << diagnostic.message << "\n";
      }
    }
  }
  std::cout << "\n";
  if (trend.has_value()) {
    print_baseline_table(*trend);
  }
  if (all_free) {
    std::cout << "Every instance verified deadlock-free.\n";
  } else if (all_expected) {
    std::cout << "Every instance matches its registered verdict ("
              << expected_prone << " expected deadlock-prone).\n";
  } else {
    std::cout << "INSTANCE NOT VERIFIED — see the rows above.\n";
  }
  return all_expected && !trend_failed ? 0 : 1;
}

int run_instance_mode(const std::string& instance, bool all, bool heavy,
                      bool sequential, std::size_t threads, bool constraints,
                      bool generic, bool stages_given,
                      const std::string& stages,
                      const std::string& baseline_path,
                      const std::string& trace_path, bool no_analyze,
                      bool as_json) {
  const InstanceRegistry& registry = InstanceRegistry::global();
  std::vector<InstanceSpec> specs;
  if (all) {
    specs = heavy ? registry.presets() : registry.sweep_presets();
  } else {
    std::string error;
    const std::optional<InstanceSpec> spec = registry.resolve(instance, &error);
    if (!spec) {
      std::cerr << "genoc verify: " << error << "\n";
      return 2;
    }
    specs.push_back(*spec);
  }

  const VerifyPipeline* pipeline = &VerifyPipeline::standard();
  std::optional<VerifyPipeline> custom;
  // Keyed off the flag's presence, not the value: `--stages=` must hit the
  // empty-selection error below, not silently run the full pipeline.
  bool run_constraints = constraints;
  if (stages_given) {
    std::string error;
    custom = VerifyPipeline::from_stage_names(split_selection(stages), &error);
    if (!custom) {
      std::cerr << "genoc verify: " << error << "\n";
      return 2;
    }
    pipeline = &*custom;
    // Explicitly selecting the constraints stage IS the opt-in: a user who
    // typed `--stages ...,constraints` wants (C-1)/(C-2) discharged, not a
    // silently skipped stage.
    for (const std::string& name : pipeline->stage_names()) {
      run_constraints = run_constraints || name == "constraints";
    }
  }

  std::map<std::string, BaselineRow> baseline;
  if (!baseline_path.empty()) {
    std::string error;
    const auto loaded = load_baseline(baseline_path, pipeline->stage_names(),
                                      run_constraints, &error);
    if (!loaded) {
      std::cerr << "genoc verify: " << error << "\n";
      return 2;
    }
    baseline = *loaded;
  }

  // Open the trace file BEFORE the (possibly minutes-long) sweep: an
  // unwritable path must exit 2 up front, not after the work is done.
  std::optional<std::ofstream> trace_out;
  if (!trace_path.empty()) {
    trace_out.emplace(trace_path);
    if (!*trace_out) {
      std::cerr << "genoc verify: cannot write --trace file '" << trace_path
                << "' (check the directory exists and is writable)\n";
      return 2;
    }
    obs::TraceRecorder::global().start();
  }

  InstanceVerifyOptions options;
  options.check_constraints = run_constraints;
  options.generic_builder = generic;
  // The batch-wide artifact store: every distinct topology x routing x
  // escape prefix in the sweep is analyzed exactly once; the CLI report
  // surfaces the cache counters so the reuse is visible.
  ArtifactStore store;
  options.artifacts = &store;

  // The analyzer pre-screen: the cheap static rules run FIRST, per
  // instance, so a structurally broken model variant surfaces typed
  // diagnostics before any verify effort is spent on it. Warms the same
  // store the pipeline reads, so no artifact is built twice.
  std::vector<AnalyzeReport> analyses;
  if (!no_analyze) {
    obs::TraceSpan analyze_span("verify_prescreen");
    const Analyzer& analyzer = Analyzer::cheap();
    analyses.reserve(specs.size());
    for (const InstanceSpec& spec : specs) {
      analyses.push_back(analyzer.run(spec, *store.acquire(spec)));
    }
  }

  std::optional<BatchRunner> runner;
  if (!sequential) {
    runner.emplace(threads);
  }
  std::vector<VerifyReport> reports;
  {
    // The root span: everything the sweep does — instance construction,
    // artifact computes, pipeline stages, pool chunks — nests under it.
    obs::TraceSpan root_span("verify");
    reports = verify_instance_reports(specs, *pipeline,
                                      runner ? &*runner : nullptr, options);
  }

  if (trace_out.has_value()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    recorder.stop();
    recorder.write_json(*trace_out);
    trace_out->flush();
    if (!*trace_out) {
      std::cerr << "genoc verify: writing --trace file '" << trace_path
                << "' failed\n";
      return 2;
    }
    // stderr, so --trace composes with --json on stdout.
    std::cerr << "genoc verify: wrote " << recorder.event_count()
              << " trace events to " << trace_path
              << " (load in Perfetto or chrome://tracing)\n";
  }

  std::optional<BaselineComparison> trend;
  if (!baseline_path.empty()) {
    trend = compare_against_baseline(reports, baseline, baseline_path);
  }
  return report_instances(reports, *pipeline, run_constraints, store.stats(),
                          analyses, as_json, all ? "all" : "instance",
                          runner ? runner->thread_count() : 1, trend);
}

int run_hermes_mode(std::int32_t width, std::int32_t height,
                    std::size_t buffers, const ObligationOptions& options,
                    bool as_json) {
  const HermesInstance hermes(width, height, buffers);
  const ObligationSuite suite = run_hermes_obligations(hermes, options);
  const ObligationRow overall = suite.overall();

  if (as_json) {
    std::vector<std::string> rows;
    for (const ObligationRow& row : suite.rows) {
      JsonObject obj;
      obj.add("label", row.label)
          .add("checks", static_cast<std::uint64_t>(row.checks))
          .add("properties", static_cast<std::uint64_t>(row.properties))
          .add("cpu_ms", row.cpu_ms)
          .add("satisfied", row.satisfied)
          .add("note", row.note);
      rows.push_back(obj.to_string());
    }
    JsonObject report;
    report.add("command", "verify")
        .add("schema_version", VerifyReport::kSchemaVersion)
        .add("mode", "hermes")
        .add("width", static_cast<std::int64_t>(width))
        .add("height", static_cast<std::int64_t>(height))
        .add("buffers_per_port", static_cast<std::uint64_t>(buffers))
        .add("all_satisfied", suite.all_satisfied())
        .add("total_checks", static_cast<std::uint64_t>(overall.checks))
        .add("total_cpu_ms", overall.cpu_ms)
        .add_raw("rows", json_array(rows));
    std::cout << report.to_string();
    return suite.all_satisfied() ? 0 : 1;
  }

  std::cout << "Discharging the HERMES proof obligations on a " << width << "x"
            << height << " mesh (" << buffers << " buffers/port)\n\n";
  Table table({"Obligation", "Checks", "Props", "CPU ms", "Status",
               "Paper: Lines/Thms/CPUmin"});
  const auto& paper = paper_table1();
  for (std::size_t i = 0; i < suite.rows.size(); ++i) {
    const ObligationRow& row = suite.rows[i];
    table.add_row({row.label, format_count(row.checks),
                   std::to_string(row.properties), format_double(row.cpu_ms, 2),
                   row.satisfied ? "DISCHARGED" : "VIOLATED",
                   i < paper.size() - 1 ? paper_column(paper[i]) : "-"});
  }
  table.add_separator();
  table.add_row({overall.label, format_count(overall.checks),
                 std::to_string(overall.properties),
                 format_double(overall.cpu_ms, 2),
                 overall.satisfied ? "DISCHARGED" : "VIOLATED",
                 paper_column(paper.back())});
  std::cout << table.render() << "\n";
  for (const ObligationRow& row : suite.rows) {
    std::cout << "  " << row.label << ": " << row.note << "\n";
  }
  std::cout << "\n"
            << (suite.all_satisfied()
                    ? "All obligations discharged: this instance satisfies "
                      "CorrThm, DeadThm and EvacThm."
                    : "OBLIGATION VIOLATED — see the rows above.")
            << "\n";
  return suite.all_satisfied() ? 0 : 1;
}

}  // namespace

int cmd_verify(const Args& args) {
  if (args.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto width =
      static_cast<std::int32_t>(args.get_int_in("width", 4, 2, 512));
  const auto height =
      static_cast<std::int32_t>(args.get_int_in("height", 4, 2, 512));
  const auto buffers =
      static_cast<std::size_t>(args.get_int_in("buffers", 2, 1, 64));
  ObligationOptions options;
  options.workloads =
      static_cast<std::size_t>(args.get_int_in("workloads", 3, 1, 1000));
  options.messages_per_workload =
      static_cast<std::size_t>(args.get_int_in("messages", 24, 1, 100000));
  // Range-checked like every integer flag: a negative or garbage seed must
  // exit 2, not wrap around into a silently different workload.
  options.seed = static_cast<std::uint64_t>(args.get_int_in(
      "seed", 2010, 0, std::numeric_limits<std::int64_t>::max()));
  const std::string instance = args.get("instance", "");
  const bool all = args.has("all");
  const auto threads =
      static_cast<std::size_t>(args.get_int_in("threads", 0, 0, 256));
  const bool sequential = args.has("sequential");
  const bool constraints = args.has("constraints");
  const bool heavy = args.has("heavy");
  const bool generic = args.has("generic");
  const std::string stages = args.get("stages", "");
  const std::string baseline_path = args.get("baseline", "");
  const bool no_analyze = args.has("no-analyze");
  // Bare `--trace` (no value) records to the default filename.
  const std::string trace_path =
      args.has("trace") ? (args.get("trace", "").empty()
                               ? std::string("genoc.trace.json")
                               : args.get("trace", ""))
                        : std::string();
  const bool as_json = args.has("json");
  if (const int rc = finish_args(args, kUsage)) {
    return rc;
  }
  // Flags are mode-specific; a flag from the other mode parses fine but
  // would silently do nothing, so call it out.
  const bool instance_mode = all || !instance.empty();
  const char* classic_flags[] = {"width",   "height",    "buffers",
                                 "workloads", "messages", "seed"};
  const char* instance_flags[] = {"threads",  "sequential", "constraints",
                                  "heavy",    "generic",    "stages",
                                  "baseline", "trace",      "no-analyze"};
  if (instance_mode) {
    for (const char* flag : classic_flags) {
      if (args.has(flag)) {
        std::cerr << "genoc verify: --" << flag
                  << " only applies to the classic HERMES mode and is "
                     "ignored with --instance/--all (instance dimensions "
                     "come from the spec)\n";
      }
    }
  } else {
    for (const char* flag : instance_flags) {
      if (args.has(flag)) {
        std::cerr << "genoc verify: --" << flag
                  << " only applies with --instance/--all and is ignored "
                     "in the classic HERMES mode\n";
      }
    }
  }
  if (instance_mode) {
    return run_instance_mode(instance, all, heavy, sequential, threads,
                             constraints, generic, args.has("stages"), stages,
                             baseline_path, trace_path, no_analyze, as_json);
  }
  return run_hermes_mode(width, height, buffers, options, as_json);
}

}  // namespace genoc::cli
