/// \file main.cpp
/// \brief The unified `genoc` driver: one binary fronting verification,
///        simulation, benchmarking, and graph export.
#include <cstring>
#include <iostream>
#include <string>

#include "cli/args.hpp"
#include "cli/commands.hpp"

namespace genoc::cli {

namespace {

constexpr const char* kVersion = "0.1.0";

constexpr const char* kUsage =
    "genoc — executable GeNoC (VerbeekS10): formal deadlock-freedom\n"
    "verification and simulation of on-chip interconnects.\n"
    "\n"
    "Usage: genoc <command> [options]\n"
    "\n"
    "Commands:\n"
    "  verify      discharge the proof obligations — on the classic HERMES\n"
    "              mesh, on one --instance (name or key=value spec), or on\n"
    "              every registered instance (--all matrix report)\n"
    "  analyze     static model analyzer: rule-based lints (routing\n"
    "              totality, node-uniformity audit, turn conformance, dead\n"
    "              ports, escape coverage, spec sanity) over --instance or\n"
    "              --all, with stable diagnostic codes\n"
    "  campaign    fault-injection campaign: enumerate link-failure\n"
    "              variants of a base instance (--faults single|double|\n"
    "              random:k,seed), screen each through the cheap analyzer\n"
    "              rules, verify survivors against shared artifacts\n"
    "  sim         run GeNoC2D on a traffic pattern with the CorrThm /\n"
    "              EvacThm / (C-5) audits on (--instance selects a network)\n"
    "  bench       timed micro-benchmarks; --json writes BENCH_*.json\n"
    "  export-dot  port dependency graph as Graphviz DOT (paper Fig. 3)\n"
    "  list        the registered network instances and their specs\n"
    "  help        show this message (also: genoc <command> --help)\n"
    "  version     print the version\n"
    "\n"
    "Run `genoc <command> --help` for per-command options.\n";

}  // namespace

int finish_args(const Args& args, const char* usage) {
  bool bad = false;
  for (const std::string& error : args.errors()) {
    std::cerr << "genoc: " << error << "\n";
    bad = true;
  }
  for (const std::string& flag : args.unknown_flags()) {
    std::cerr << "genoc: unknown option " << flag << "\n";
    bad = true;
  }
  // No subcommand takes positionals; a stray one is usually a single-dash
  // flag typo (`-width 9`) that must not silently run with defaults.
  for (const std::string& positional : args.positionals()) {
    std::cerr << "genoc: unexpected argument '" << positional
              << "' (options use --name value)\n";
    bad = true;
  }
  if (bad) {
    std::cerr << "\n" << usage;
    return 2;
  }
  return 0;
}

std::vector<std::string> split_selection(const std::string& text) {
  std::vector<std::string> names;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      if (!current.empty()) {
        names.push_back(current);
        current.clear();
      }
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) {
    names.push_back(current);
  }
  return names;
}

}  // namespace genoc::cli

int main(int argc, char** argv) {
  using namespace genoc::cli;

  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);

  if (command == "help" || command == "--help" || command == "-h") {
    std::cout << kUsage;
    return 0;
  }
  if (command == "version" || command == "--version") {
    std::cout << "genoc " << kVersion << "\n";
    return 0;
  }

  if (command == "verify") {
    return cmd_verify(args);
  }
  if (command == "analyze") {
    return cmd_analyze(args);
  }
  if (command == "campaign") {
    return cmd_campaign(args);
  }
  if (command == "sim") {
    return cmd_sim(args);
  }
  if (command == "bench") {
    return cmd_bench(args);
  }
  if (command == "export-dot") {
    return cmd_export_dot(args);
  }
  if (command == "list") {
    return cmd_list(args);
  }

  std::cerr << "genoc: unknown command '" << command << "'\n\n" << kUsage;
  return 2;
}
