/// \file campaign_json.hpp
/// \brief JSON rendering of the fault-campaign report (`genoc campaign
///        --json`), schema-versioned for tools/check_campaign_schema.py.
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace genoc::cli {

/// Serializes a CampaignReport as the schema-versioned envelope. With
/// \p include_timing false, the thread count, wall times and the metrics
/// snapshot are omitted, so the output is BYTE-IDENTICAL at any --threads
/// value — the determinism contract the campaign tests diff on. Cache
/// counters are always included (they are deterministic).
std::string campaign_report_json(const genoc::CampaignReport& report,
                                 bool include_timing);

}  // namespace genoc::cli
