#include "sim/stats.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace genoc {

std::string SummaryStats::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " mean=" << mean << " p50=" << p50
     << " p95=" << p95 << " p99=" << p99 << " max=" << max;
  return os.str();
}

SummaryStats summarize(std::vector<double> sample) {
  SummaryStats stats;
  if (sample.empty()) {
    return stats;
  }
  std::sort(sample.begin(), sample.end());
  stats.count = sample.size();
  stats.min = sample.front();
  stats.max = sample.back();
  stats.mean = std::accumulate(sample.begin(), sample.end(), 0.0) /
               static_cast<double>(sample.size());
  auto percentile = [&](double p) {
    const double idx = p * static_cast<double>(sample.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, sample.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sample[lo] * (1.0 - frac) + sample[hi] * frac;
  };
  stats.p50 = percentile(0.50);
  stats.p95 = percentile(0.95);
  stats.p99 = percentile(0.99);
  return stats;
}

}  // namespace genoc
