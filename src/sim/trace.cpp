#include "sim/trace.hpp"

#include "util/csv.hpp"

namespace genoc {

std::function<void(const Config&, const StepResult&)>
TraceRecorder::observer() {
  return [this](const Config& config, const StepResult& step) {
    TraceRow row;
    // The observer fires after advance_step(), so step() is 1-based here.
    row.step = config.step();
    row.flits_moved = step.flits_moved;
    row.packets_entered = step.entered.size();
    row.packets_delivered = step.delivered.size();
    row.flits_in_flight = config.state().flits_in_flight();
    row.pending_travels = config.pending().size();
    row.measure = measure_->value(config);
    rows_.push_back(row);
  };
}

std::string TraceRecorder::to_csv() const {
  CsvWriter csv({"step", "flits_moved", "packets_entered",
                 "packets_delivered", "flits_in_flight", "pending_travels",
                 "measure"});
  for (const TraceRow& row : rows_) {
    csv.add_row({std::to_string(row.step), std::to_string(row.flits_moved),
                 std::to_string(row.packets_entered),
                 std::to_string(row.packets_delivered),
                 std::to_string(row.flits_in_flight),
                 std::to_string(row.pending_travels),
                 std::to_string(row.measure)});
  }
  return csv.render();
}

void TraceRecorder::write_csv(const std::string& path) const {
  CsvWriter csv({"step", "flits_moved", "packets_entered",
                 "packets_delivered", "flits_in_flight", "pending_travels",
                 "measure"});
  for (const TraceRow& row : rows_) {
    csv.add_row({std::to_string(row.step), std::to_string(row.flits_moved),
                 std::to_string(row.packets_entered),
                 std::to_string(row.packets_delivered),
                 std::to_string(row.flits_in_flight),
                 std::to_string(row.pending_travels),
                 std::to_string(row.measure)});
  }
  csv.write_file(path);
}

}  // namespace genoc
