/// \file simulator.hpp
/// \brief The simulation driver: runs GeNoC2D configurations end to end with
///        full auditing and produces latency/throughput reports.
///
/// "Thanks to the implementation … instances of GeNoC can efficiently be
/// simulated on concrete data. The same model is used for simulation and
/// validation." (paper Sec. I). This driver is that simulation face: it runs
/// the identical Config/NetworkState structures the checkers verify and
/// audits CorrThm, EvacThm and (C-5) on every run.
#pragma once

#include <string>
#include <vector>

#include "core/hermes.hpp"
#include "sim/stats.hpp"
#include "util/rng.hpp"

namespace genoc {

/// Options for one simulation.
struct SimulationOptions {
  std::uint32_t flit_count = 4;
  GenocOptions genoc;  ///< audit_measure defaults to on
  /// Run the CorrThm/EvacThm audits after the run (tiny cost; recommended).
  bool audit_theorems = true;
};

/// Outcome of one simulation.
struct SimulationReport {
  GenocRunResult run;
  std::size_t messages = 0;
  std::size_t total_flits = 0;
  /// Per-message latency in steps (injection is at step 0, so latency =
  /// arrival step + 1).
  SummaryStats latency;
  /// Delivered flits per step over the whole run.
  double throughput = 0.0;
  bool correctness_ok = false;
  bool evacuation_ok = false;

  std::string summary() const;
};

/// Simulates the HERMES instance on the given traffic.
SimulationReport simulate(const HermesInstance& hermes,
                          const std::vector<TrafficPair>& pairs,
                          const SimulationOptions& options = {});

/// Samples one concrete route of a (possibly adaptive) routing function by
/// walking next_hops and picking uniformly at random among the choices.
/// Deterministic functions yield their unique route.
Route sample_route(const RoutingFunction& routing, const Port& from,
                   const Port& to, Rng& rng);

/// Simulates an arbitrary routing function (including the adaptive
/// extensions) over \p mesh: adaptive choices are fixed per travel by
/// sampling routes with \p rng, then the switching policy runs as usual
/// (\p switching = nullptr selects wormhole, HERMES' choice). Used by the
/// routing-comparison ablation and the instance layer.
SimulationReport simulate_routing(const Mesh2D& mesh,
                                  const RoutingFunction& routing,
                                  const std::vector<TrafficPair>& pairs,
                                  std::size_t buffers_per_port, Rng& rng,
                                  const SimulationOptions& options = {},
                                  const SwitchingPolicy* switching = nullptr);

}  // namespace genoc
