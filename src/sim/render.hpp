/// \file render.hpp
/// \brief ASCII rendering of a network state: per-node buffer occupancy on
///        the mesh grid, for examples and debugging.
#pragma once

#include <string>

#include "switching/network_state.hpp"

namespace genoc {

/// Renders the mesh as a grid; each node shows the number of flits
/// currently buffered in its ports (0 prints as '.') and a '*' marker when
/// some port of the node is full. Example 3x2 output:
///
///   .    3*   .
///   2    .    1
std::string render_occupancy(const NetworkState& state);

/// Renders one packet's worm: its route with markers for flit positions
/// ('H' header, 'o' body, '.' not yet reached / already left).
std::string render_packet(const NetworkState& state, TravelId id);

}  // namespace genoc
