#include "sim/render.hpp"

#include <sstream>
#include <vector>

#include "util/require.hpp"

namespace genoc {

std::string render_occupancy(const NetworkState& state) {
  const Mesh2D& mesh = state.mesh();
  std::ostringstream os;
  for (std::int32_t y = 0; y < mesh.height(); ++y) {
    for (std::int32_t x = 0; x < mesh.width(); ++x) {
      std::size_t flits = 0;
      bool any_full = false;
      for (const Port& p : mesh.ports()) {
        if (p.x == x && p.y == y) {
          const PortId pid = mesh.id(p);
          flits += state.occupancy(pid);
          any_full |= state.port_full(pid);
        }
      }
      std::string cell = flits == 0 ? "." : std::to_string(flits);
      if (any_full) {
        cell += '*';
      }
      os << cell << std::string(cell.size() < 5 ? 5 - cell.size() : 1, ' ');
    }
    os << '\n';
  }
  return os.str();
}

std::string render_packet(const NetworkState& state, TravelId id) {
  const PacketSpec& spec = state.packet(id);
  // Mark, per route index, which flit(s) sit there.
  std::vector<char> marks(spec.route.size(), '.');
  std::size_t outside = 0;
  std::size_t delivered = 0;
  for (std::uint32_t k = 0; k < spec.flit_count; ++k) {
    const std::int32_t pos = state.flit_pos(id, k);
    if (pos == kFlitOutside) {
      ++outside;
    } else if (pos == kFlitDelivered) {
      ++delivered;
    } else if (k == 0) {
      marks[static_cast<std::size_t>(pos)] = 'H';
    } else if (marks[static_cast<std::size_t>(pos)] == '.') {
      // Body flits never overwrite the header marker when several flits of
      // the worm share one multi-buffer port.
      marks[static_cast<std::size_t>(pos)] = 'o';
    }
  }
  std::ostringstream os;
  os << "travel " << id << " [" << outside << " outside, " << delivered
     << " delivered]: ";
  for (std::size_t i = 0; i < spec.route.size(); ++i) {
    os << marks[i] << to_string(spec.route[i]);
    if (i + 1 < spec.route.size()) {
      os << " -> ";
    }
  }
  return os.str();
}

}  // namespace genoc
