#include "sim/simulator.hpp"

#include <sstream>

#include "core/theorems.hpp"
#include "util/require.hpp"

namespace genoc {

std::string SimulationReport::summary() const {
  std::ostringstream os;
  os << messages << " messages (" << total_flits << " flits) in " << run.steps
     << " steps; " << (run.deadlocked ? "DEADLOCKED" : "evacuated")
     << "; latency " << latency.to_string() << "; throughput " << throughput
     << " flits/step; CorrThm " << (correctness_ok ? "ok" : "FAIL")
     << ", EvacThm " << (evacuation_ok ? "ok" : "FAIL");
  return os.str();
}

namespace {

SimulationReport finish_report(const Config& config,
                               const RoutingFunction& routing,
                               GenocRunResult run,
                               const SimulationOptions& options) {
  SimulationReport report;
  report.messages = config.travels().size();
  for (const Travel& t : config.travels()) {
    report.total_flits += t.flit_count;
  }
  std::vector<double> latencies;
  latencies.reserve(config.arrived().size());
  for (const Arrival& a : config.arrived()) {
    latencies.push_back(static_cast<double>(a.step) + 1.0);
  }
  report.latency = summarize(std::move(latencies));
  report.throughput =
      run.steps == 0 ? 0.0
                     : static_cast<double>(report.total_flits) /
                           static_cast<double>(run.steps);
  if (options.audit_theorems) {
    report.correctness_ok = check_correctness(config, routing).holds;
    report.evacuation_ok = check_evacuation(config, run).holds;
  }
  report.run = std::move(run);
  return report;
}

}  // namespace

SimulationReport simulate(const HermesInstance& hermes,
                          const std::vector<TrafficPair>& pairs,
                          const SimulationOptions& options) {
  Config config = hermes.make_config(pairs, options.flit_count);
  GenocRunResult run = hermes.run(config, options.genoc);
  return finish_report(config, hermes.routing(), std::move(run), options);
}

Route sample_route(const RoutingFunction& routing, const Port& from,
                   const Port& to, Rng& rng) {
  GENOC_REQUIRE(routing.reachable(from, to),
                "sample_route requires reachable endpoints");
  const std::size_t bound = routing.mesh().port_count() + 1;
  Route route{from};
  Port current = from;
  while (current != to) {
    const std::vector<Port> hops = routing.next_hops(current, to);
    GENOC_REQUIRE(!hops.empty(),
                  "routing dead-ends at " + to_string(current));
    current = hops.size() == 1 ? hops.front() : rng.pick(hops);
    route.push_back(current);
    GENOC_REQUIRE(route.size() <= bound,
                  "routing does not terminate while sampling a route");
  }
  return route;
}

SimulationReport simulate_routing(const Mesh2D& mesh,
                                  const RoutingFunction& routing,
                                  const std::vector<TrafficPair>& pairs,
                                  std::size_t buffers_per_port, Rng& rng,
                                  const SimulationOptions& options,
                                  const SwitchingPolicy* switching) {
  Config config(mesh, buffers_per_port);
  TravelId next_id = 1;
  for (const TrafficPair& pair : pairs) {
    const Port from = mesh.local_in(pair.source.x, pair.source.y);
    const Port to = mesh.local_out(pair.dest.x, pair.dest.y);
    Route route = sample_route(routing, from, to, rng);
    config.add_travel(make_travel_with_route(next_id++, routing,
                                             std::move(route),
                                             options.flit_count));
  }
  const IdentityInjection injection;
  const WormholeSwitching wormhole;
  const SwitchingPolicy& policy =
      switching != nullptr ? *switching
                           : static_cast<const SwitchingPolicy&>(wormhole);
  const FlitLevelMeasure measure;
  const GenocInterpreter interpreter(injection, policy, measure);
  GenocRunResult run = interpreter.run(config, options.genoc);
  return finish_report(config, routing, std::move(run), options);
}

}  // namespace genoc
