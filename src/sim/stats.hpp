/// \file stats.hpp
/// \brief Summary statistics for simulation reports (latency, throughput).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace genoc {

/// Order statistics of a sample.
struct SummaryStats {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  std::string to_string() const;
};

/// Computes summary statistics; an empty sample yields all-zero stats.
SummaryStats summarize(std::vector<double> sample);

}  // namespace genoc
