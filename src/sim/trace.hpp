/// \file trace.hpp
/// \brief Per-step run traces: what every switching step did, exportable to
///        CSV for external plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/genoc.hpp"
#include "core/measure.hpp"
#include "switching/policy.hpp"

namespace genoc {

/// One row per switching step.
struct TraceRow {
  std::size_t step = 0;
  std::size_t flits_moved = 0;
  std::size_t packets_entered = 0;
  std::size_t packets_delivered = 0;
  std::size_t flits_in_flight = 0;   ///< buffered flits after the step
  std::size_t pending_travels = 0;   ///< |T| after the step
  std::uint64_t measure = 0;         ///< μ(σ) after the step
};

/// Collects TraceRows from interpreter runs via GenocOptions::observer.
class TraceRecorder {
 public:
  /// \param measure the measure to log each step (usually the instance's).
  explicit TraceRecorder(const TerminationMeasure& measure)
      : measure_(&measure) {}

  /// Returns the observer callback to plug into GenocOptions.
  std::function<void(const Config&, const StepResult&)> observer();

  const std::vector<TraceRow>& rows() const { return rows_; }
  void clear() { rows_.clear(); }

  /// Serializes the trace as CSV (step, moved, entered, delivered,
  /// in_flight, pending, measure).
  std::string to_csv() const;

  /// Writes the CSV to \p path.
  void write_csv(const std::string& path) const;

 private:
  const TerminationMeasure* measure_;
  std::vector<TraceRow> rows_;
};

}  // namespace genoc
