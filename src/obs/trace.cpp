#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

namespace genoc::obs {
namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Minimal JSON string escape for event names and detail payloads. The obs
// layer sits below cli/, so it cannot reuse cli/json_writer.
void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

// Microseconds with nanosecond precision, the unit Chrome trace ts/dur use.
void append_us(std::string& out, std::uint64_t ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buffer;
}

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::start() {
  clear();
  start_ns_epoch_ = steady_now_ns();
  g_enabled.store(true, std::memory_order_relaxed);
}

void TraceRecorder::stop() { g_enabled.store(false, std::memory_order_relaxed); }

void TraceRecorder::clear() {
  stop();
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::now_ns() const noexcept {
  const std::uint64_t now = steady_now_ns();
  return now >= start_ns_epoch_ ? now - start_ns_epoch_ : 0;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  struct TlsRef {
    TraceRecorder* owner = nullptr;
    std::uint64_t epoch = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local TlsRef ref;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (ref.owner != this || ref.epoch != epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(std::move(buffer));
    ref.owner = this;
    ref.epoch = epoch;
    ref.buffer = buffers_.back().get();
  }
  return *ref.buffer;
}

void TraceRecorder::record(const char* name, std::string detail,
                           std::uint64_t start_ns, std::uint64_t dur_ns) {
  ThreadBuffer& buffer = local_buffer();
  buffer.events.push_back(
      TraceEvent{name, std::move(detail), start_ns, dur_ns});
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->events.size();
  }
  return total;
}

void TraceRecorder::write_json(std::ostream& out) const {
  std::string text;
  text += "{\"traceEvents\": [";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) {
      text += ",";
    }
    first = false;
    text += "\n  ";
    text += event;
  };

  std::lock_guard<std::mutex> lock(mutex_);

  emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
       "\"args\": {\"name\": \"genoc\"}}");
  for (const auto& buffer : buffers_) {
    std::string event = "{\"name\": \"thread_name\", \"ph\": \"M\", "
                        "\"pid\": 1, \"tid\": ";
    event += std::to_string(buffer->tid);
    event += ", \"args\": {\"name\": \"";
    event += buffer->tid == 0 ? "main" : "worker-" + std::to_string(buffer->tid);
    event += "\"}}";
    emit(event);
  }

  for (const auto& buffer : buffers_) {
    // Events land in the buffer at span close, so sort back into start
    // order; on equal starts the longer (enclosing) span must come first
    // for stack-nesting consumers.
    std::vector<const TraceEvent*> ordered;
    ordered.reserve(buffer->events.size());
    for (const TraceEvent& event : buffer->events) {
      ordered.push_back(&event);
    }
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->start_ns != b->start_ns) {
                         return a->start_ns < b->start_ns;
                       }
                       return a->dur_ns > b->dur_ns;
                     });
    for (const TraceEvent* event : ordered) {
      std::string line = "{\"name\": \"";
      append_escaped(line, event->name);
      line += "\", \"ph\": \"X\", \"ts\": ";
      append_us(line, event->start_ns);
      line += ", \"dur\": ";
      append_us(line, event->dur_ns);
      line += ", \"pid\": 1, \"tid\": ";
      line += std::to_string(buffer->tid);
      if (!event->detail.empty()) {
        line += ", \"args\": {\"detail\": \"";
        append_escaped(line, event->detail);
        line += "\"}";
      }
      line += "}";
      emit(line);
    }
  }

  text += "\n]}\n";
  out << text;
}

std::string TraceRecorder::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void TraceSpan::begin(const char* name) noexcept {
  name_ = name;
  start_ns_ = TraceRecorder::global().now_ns();
  active_ = true;
}

void TraceSpan::end() noexcept {
  TraceRecorder& recorder = TraceRecorder::global();
  const std::uint64_t end_ns = recorder.now_ns();
  const std::uint64_t dur_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  recorder.record(name_, std::move(detail_), start_ns_, dur_ns);
}

}  // namespace genoc::obs
