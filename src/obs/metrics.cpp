#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace genoc::obs {

std::size_t metric_thread_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void Histogram::observe(std::uint64_t value) noexcept {
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  max_.record_max(static_cast<std::int64_t>(value));
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = static_cast<std::uint64_t>(max_.value());
  for (std::size_t width = 0; width < kBuckets; ++width) {
    const std::uint64_t count =
        buckets_[width].load(std::memory_order_relaxed);
    if (count == 0) {
      continue;
    }
    // bit_width(v) == w covers v in [2^(w-1), 2^w - 1]; upper bound 2^w - 1.
    const std::uint64_t bound =
        width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    snap.buckets.emplace_back(bound, count);
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.reset();
}

std::uint64_t MetricsSnapshot::counter_value(
    std::string_view name) const noexcept {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) {
      return value;
    }
  }
  return 0;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

template <typename T>
T& MetricsRegistry::find_or_create(Table<T>& table, std::string_view name) {
  for (auto& [existing, metric] : table) {
    if (existing == name) {
      return *metric;
    }
  }
  table.emplace_back(std::string(name), std::make_unique<T>());
  return *table.back().second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      snap.counters.emplace_back(name, counter->value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      snap.gauges.emplace_back(name, gauge->value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      snap.histograms.emplace_back(name, histogram->snapshot());
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->reset();
  }
}

}  // namespace genoc::obs
