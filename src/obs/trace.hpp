#pragma once

// Span-based trace recorder emitting Chrome trace-event JSON.
//
// `TraceSpan` is an RAII guard: construction stamps a start time, the
// destructor records one complete ("X") event into a thread-local buffer
// owned by the process-wide `TraceRecorder`. When tracing is disabled (the
// default), constructing a span costs exactly one relaxed atomic load and
// one branch — no clock read, no allocation — so instrumentation can stay
// on hot paths permanently.
//
// The recorder assigns each recording thread a small sequential tid in
// first-event order (the coordinating thread, which opens the outermost
// span, gets tid 0) and serializes all buffers as a single
// `{"traceEvents": [...]}` document that Perfetto and chrome://tracing load
// directly. Timestamps are microseconds relative to `start()`.
//
// Lifecycle contract: `start()`, `stop()`, `clear()`, and the serializers
// must only be called from the coordinating thread while no instrumented
// parallel work is in flight (the CLI enables tracing before the verify
// sweep and writes the file after it completes). Span construction and
// destruction are safe from any thread at any time.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace genoc::obs {

struct TraceEvent {
  const char* name = nullptr;  ///< static string; span call sites pass literals
  std::string detail;          ///< optional args payload; empty = omitted
  std::uint64_t start_ns = 0;  ///< relative to TraceRecorder::start()
  std::uint64_t dur_ns = 0;
};

class TraceRecorder {
 public:
  static TraceRecorder& global();

  /// True while spans record events. One relaxed load: the fast path.
  static bool enabled() noexcept {
    return g_enabled.load(std::memory_order_relaxed);
  }

  /// Drops any prior events and starts recording; the epoch clock zeroes
  /// here.
  void start();

  /// Stops recording; already-open spans on the coordinating thread still
  /// record when they close before serialization.
  void stop();

  /// Drops all events and buffers (stops first if needed).
  void clear();

  /// Nanoseconds since start().
  std::uint64_t now_ns() const noexcept;

  /// Appends one complete event to the calling thread's buffer.
  void record(const char* name, std::string detail, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  std::size_t event_count() const;

  /// Serializes every buffer as one Chrome trace-event JSON document.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer& local_buffer();

  static inline std::atomic<bool> g_enabled{false};

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  /// Bumped by clear() so thread-local buffer pointers from a previous
  /// recording generation re-register instead of dangling.
  std::atomic<std::uint64_t> epoch_{1};
  std::uint64_t start_ns_epoch_ = 0;  ///< steady_clock ns at start()
};

/// RAII span: records one "X" trace event covering its lifetime. No-op
/// (one atomic load) when tracing is disabled at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    if (TraceRecorder::enabled()) {
      begin(name);
    }
  }
  ~TraceSpan() {
    if (active_) {
      end();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span will record; gate detail-string construction on it.
  bool active() const noexcept { return active_; }

  /// Attaches a free-form payload emitted under args.detail.
  void set_detail(std::string detail) { detail_ = std::move(detail); }

 private:
  void begin(const char* name) noexcept;
  void end() noexcept;

  const char* name_ = nullptr;
  std::string detail_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace genoc::obs
