#pragma once

// Process-wide metrics registry: counters, gauges, and histograms that the
// verify pipeline, artifact cache, and thread pool tick on their hot paths.
//
// Counters are sharded across cache-line-aligned atomic slots indexed by a
// per-thread shard id, so concurrent increments from pool workers never
// contend on one line; a snapshot folds the shards in fixed index order, so
// the fold is deterministic for a given set of increments regardless of
// which thread performed them. Gauges are single atomics with `set` and
// `record_max` (high-water) semantics. Histograms bucket values by power of
// two (bit width), which is exact enough for grain sizes and queue depths
// while keeping `observe` a single atomic add.
//
// Metric objects are owned by the registry and never deallocated until
// process exit, so call sites may cache `Counter&` references (e.g. in
// function-local statics) and tick them lock-free forever. `reset()` zeroes
// every value but keeps all registrations — and therefore all cached
// references — valid; tests use it to isolate runs.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace genoc::obs {

/// Number of per-thread counter shards. Threads hash onto shards by a
/// sequentially assigned thread index, so up to this many threads increment
/// without sharing a cache line.
inline constexpr std::size_t kMetricShards = 16;

/// Sequential index of the calling thread, assigned on first use; used to
/// pick a counter shard.
std::size_t metric_thread_index() noexcept;

/// Monotonic counter, sharded per thread.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    shards_[metric_thread_index() % kMetricShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Folds the shards in index order.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Point-in-time value with last-write-wins `set` and monotonic
/// `record_max` high-water semantics.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }

  void record_max(std::int64_t value) noexcept {
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < value &&
           !value_.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two-bucket histogram: bucket i counts values v with
/// bit_width(v) == i, i.e. the bucket upper bounds are 0, 1, 3, 7, ...
/// `observe` is one relaxed atomic add per of {bucket, sum, count, max}.
class Histogram {
 public:
  /// Bucket for values 0..2^64-1 by bit width: 0 has width 0, so 65 slots.
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t value) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    /// (inclusive upper bound, count) for non-empty buckets only,
    /// ascending by bound.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };
  Snapshot snapshot() const;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  Gauge max_;
};

/// Deterministic, name-sorted view of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

  /// Value of a named counter, or 0 when absent (unregistered == never
  /// ticked).
  std::uint64_t counter_value(std::string_view name) const noexcept;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem ticks into.
  static MetricsRegistry& global();

  /// Finds or creates the named metric. The returned reference stays valid
  /// for the registry's lifetime; hot call sites should cache it instead of
  /// re-resolving the name per tick. Counter, gauge, and histogram names
  /// live in separate namespaces.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Name-sorted snapshot of every metric; shard folds happen here, in
  /// fixed shard order, so equal increment multisets yield equal snapshots.
  MetricsSnapshot snapshot() const;

  /// Zeroes every value but keeps registrations (and cached references)
  /// alive. Call only while no instrumented work is in flight.
  void reset();

 private:
  template <typename T>
  using Table = std::vector<std::pair<std::string, std::unique_ptr<T>>>;

  template <typename T>
  static T& find_or_create(Table<T>& table, std::string_view name);

  mutable std::mutex mutex_;
  Table<Counter> counters_;
  Table<Gauge> gauges_;
  Table<Histogram> histograms_;
};

}  // namespace genoc::obs
